//! The paper's baseline heuristic controller (§4.2, Algorithm 1).
//!
//! Initial assignment: one core at the median frequency, batch size 2, LLC
//! proportional to flow rate, DMA buffer aligned to the LLC allocation.
//! Periodically it measures energy efficiency `λ = throughput / energy` and
//! steps the core frequency toward the nearest available value and nudges
//! the batch size by ±1 against two thresholds.

use nfv_sim::prelude::*;

use crate::controller::Controller;

/// Algorithm 1 implementation.
#[derive(Debug)]
pub struct HeuristicController {
    /// λ threshold below which the frequency is stepped down (line 9).
    pub threshold1: f64,
    /// λ threshold below which the batch size is grown (line 13).
    pub threshold2: f64,
    scaler: FreqScaler,
}

impl Default for HeuristicController {
    fn default() -> Self {
        // Thresholds in Gbps/kJ, tuned to the simulator's efficiency range
        // (~0.5 at baseline to ~5 for well-tuned settings).
        Self::new(2.1, 2.3)
    }
}

impl HeuristicController {
    /// Creates the controller with explicit λ thresholds.
    pub fn new(threshold1: f64, threshold2: f64) -> Self {
        let mut scaler = FreqScaler::new(Governor::Userspace);
        // Median frequency of the ladder (Algorithm 1 line 3).
        let ladder = scaler.ladder().to_vec();
        let median = ladder[ladder.len() / 2];
        scaler
            .set_userspace_ghz(median)
            .expect("median frequency is on the ladder");
        Self {
            threshold1,
            threshold2,
            scaler,
        }
    }

    /// Energy efficiency λ in Gbps per kJ (Algorithm 1 line 8).
    fn lambda(t: &ChainTelemetry) -> f64 {
        if t.energy_j <= 0.0 {
            0.0
        } else {
            t.throughput_gbps / (t.energy_j / 1000.0)
        }
    }
}

impl Controller for HeuristicController {
    fn name(&self) -> &'static str {
        "Heuristics"
    }

    fn platform(&self) -> PlatformPolicy {
        // The heuristic tunes knobs but keeps the stock ONVM platform
        // (pure polling, no core power management).
        PlatformPolicy::baseline()
    }

    fn initial_knobs(&self, flows: &FlowSet) -> KnobSettings {
        // Lines 1-6 of Algorithm 1: "allocate cores ... evenly to each NF" —
        // one core per NF of the canonical 3-NF chain.
        let cores = 3;
        let batch = 2u32;
        // LLC proportional to flow rate: a single chain gets a share scaled
        // by its offered load relative to line rate.
        let llc_fraction = (flows.total_offered_gbps() / 10.0).clamp(0.1, 0.9);
        let llc_bytes = llc_fraction * 0.9 * LLC_BYTES as f64;
        // DMA aligned with the LLC allocation and batch (line 6).
        let pkt = flows.mean_packet_size().max(64.0);
        let dma_bytes = (llc_bytes / pkt * f64::from(batch) * 64.0)
            .clamp(DMA_MIN_BYTES as f64, DMA_MAX_BYTES as f64);
        KnobSettings {
            cpu: CpuAllocation { cores, share: 1.0 },
            freq_ghz: self.scaler.current_ghz(),
            llc_fraction,
            dma: DmaBuffer {
                bytes: dma_bytes as u64,
            },
            batch,
        }
    }

    fn decide(&mut self, telemetry: &ChainTelemetry, current: &KnobSettings) -> KnobSettings {
        let lambda = Self::lambda(telemetry);
        let mut next = *current;
        // Lines 9-12: frequency step against threshold1.
        if lambda < self.threshold1 {
            next.freq_ghz = self.scaler.step_down();
        } else {
            next.freq_ghz = self.scaler.step_up();
        }
        // Lines 13-16: batch step against threshold2.
        if lambda < self.threshold2 {
            next.batch = (next.batch + 1).min(BATCH_MAX);
        } else {
            next.batch = next.batch.saturating_sub(1).max(BATCH_MIN);
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::BaselineController;
    use crate::controller::{run_controller, RunConfig};

    #[test]
    fn initial_knobs_follow_algorithm_one() {
        let h = HeuristicController::default();
        let k = h.initial_knobs(&FlowSet::evaluation_five_flows());
        assert_eq!(k.cpu.cores, 3);
        assert_eq!(k.batch, 2);
        // Median of [1.2..2.1] ladder.
        assert!((k.freq_ghz - 1.7).abs() < 0.11);
        assert!(k.validate().is_ok());
        // ~line-rate offered traffic → large LLC share.
        assert!(k.llc_fraction > 0.8);
    }

    #[test]
    fn low_efficiency_steps_frequency_down_and_batch_up() {
        let mut h = HeuristicController::new(1e9, 1e9); // thresholds never met
        let k = h.initial_knobs(&FlowSet::evaluation_five_flows());
        let t = ChainTelemetry {
            throughput_gbps: 1.0,
            energy_j: 3000.0,
            cpu_util: 0.5,
            arrival_pps: 3e6,
            miss_rate: 0.2,
            loss_frac: 0.5,
        };
        let next = h.decide(&t, &k);
        assert!(next.freq_ghz < k.freq_ghz);
        assert_eq!(next.batch, k.batch + 1);
    }

    #[test]
    fn high_efficiency_steps_frequency_up_and_batch_down() {
        let mut h = HeuristicController::new(0.0, 0.0); // thresholds always met
        let k = h.initial_knobs(&FlowSet::evaluation_five_flows());
        let t = ChainTelemetry {
            throughput_gbps: 9.0,
            energy_j: 1000.0,
            cpu_util: 0.9,
            arrival_pps: 3e6,
            miss_rate: 0.05,
            loss_frac: 0.0,
        };
        let next = h.decide(&t, &k);
        assert!(next.freq_ghz > k.freq_ghz);
        assert_eq!(next.batch, k.batch - 1);
    }

    #[test]
    fn heuristic_beats_baseline_throughput() {
        // The paper: "the heuristic-based approach can achieve 2× performance
        // improvement over baseline". Shape check: ≥ 1.5×.
        let cfg = RunConfig::paper(30, 3);
        let base = run_controller(&mut BaselineController, &cfg);
        let heur = run_controller(&mut HeuristicController::default(), &cfg);
        assert!(
            heur.mean_throughput_gbps > 1.5 * base.mean_throughput_gbps,
            "heuristic {} vs baseline {}",
            heur.mean_throughput_gbps,
            base.mean_throughput_gbps
        );
    }

    #[test]
    fn batch_never_leaves_valid_range() {
        let mut h = HeuristicController::new(0.0, 0.0); // always steps batch down
        let mut k = h.initial_knobs(&FlowSet::evaluation_five_flows());
        k.batch = 1;
        let t = ChainTelemetry {
            throughput_gbps: 9.0,
            energy_j: 500.0,
            cpu_util: 0.5,
            arrival_pps: 1e6,
            miss_rate: 0.1,
            loss_frac: 0.0,
        };
        for _ in 0..5 {
            k = h.decide(&t, &k);
            assert!(k.batch >= BATCH_MIN);
            assert!(k.validate().is_ok());
        }
    }
}

//! Distributed training: the paper's Ape-X framework (§4.3.2, Algorithm 3).
//!
//! Multiple **actor** workers (`NF_CONTROLLER` in the paper) run on their own
//! simulated nodes, generate experience under the current policy, compute
//! initial TD-error priorities locally, and periodically flush their local
//! buffers into a **central prioritized replay memory**. A single **central
//! learner** (`CENTRAL_LEARNER`) samples prioritized minibatches, applies
//! DDPG updates, refreshes priorities, periodically evicts stale experience,
//! and broadcasts new parameters, which actors pull on their next sync.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use greennfv_rl::env::{Environment, Transition};
use greennfv_rl::noise::OrnsteinUhlenbeck;
use greennfv_rl::per::PrioritizedReplay;
use greennfv_rl::prelude::{DdpgAgent, DdpgConfig, DdpgParams};
use greennfv_rl::schedule::Schedule;
use parking_lot::{Mutex, RwLock};

use crate::action::ActionSpace;
use crate::envs::{EnvConfig, GreenNfvEnv, STATE_DIM};
use crate::sla::Sla;

/// Ape-X configuration.
#[derive(Debug, Clone)]
pub struct ApexConfig {
    /// Number of actor workers (the paper deploys three NF-hosting nodes).
    pub actors: usize,
    /// Episodes per actor.
    pub episodes_per_actor: u32,
    /// Environment steps between local-buffer flushes to the central replay.
    pub flush_every: usize,
    /// Environment steps between parameter syncs from the learner.
    pub sync_every: usize,
    /// Learner minibatch size.
    pub batch_size: usize,
    /// Transitions required before learning starts.
    pub warmup: usize,
    /// Central replay capacity.
    pub replay_capacity: usize,
    /// Learner updates between parameter broadcasts.
    pub publish_every: u64,
    /// Learner updates between stale-experience evictions.
    pub evict_every: u64,
    /// OU noise σ schedule over per-actor episodes.
    pub noise_sigma: Schedule,
    /// PER β schedule over learner updates.
    pub beta: Schedule,
    /// DDPG hyperparameters.
    pub ddpg: DdpgConfig,
    /// Candidate actions per environment step. At 1 (the default) actors
    /// step with the single noisy policy action, exactly as before. Above 1
    /// each actor proposes that many noise-perturbed variants, submits them
    /// as one batched what-if sweep ([`GreenNfvEnv::sweep_actions`]), and
    /// commits the best-scoring candidate — shooting-style exploration paid
    /// for by the batch engine rather than extra environment epochs.
    pub candidates_per_step: usize,
    /// Warm-start parameters for the central learner (e.g. the
    /// `best_params` of a sequential [`crate::train::TrainCheckpoint`]):
    /// the learner imports them before the first update and every actor
    /// pulls them at its first sync, so a distributed run can continue from
    /// a checkpointed sequential one instead of starting cold.
    pub initial_params: Option<DdpgParams>,
    /// Master seed.
    pub seed: u64,
}

impl Default for ApexConfig {
    fn default() -> Self {
        Self {
            actors: 3,
            episodes_per_actor: 400,
            flush_every: 16,
            sync_every: 32,
            batch_size: 64,
            warmup: 256,
            replay_capacity: 100_000,
            publish_every: 16,
            evict_every: 4096,
            noise_sigma: Schedule::Exponential {
                from: 0.35,
                rate: 0.995,
                min: 0.03,
            },
            beta: Schedule::Linear {
                from: 0.4,
                to: 1.0,
                steps: 20_000,
            },
            ddpg: DdpgConfig::default(),
            candidates_per_step: 1,
            initial_params: None,
            seed: 42,
        }
    }
}

/// Outcome of a distributed training run.
#[derive(Debug)]
pub struct ApexOutcome {
    /// The learner's final agent.
    pub agent: DdpgAgent,
    /// Action decoding used during training.
    pub action_space: ActionSpace,
    /// Total environment steps across all actors.
    pub actor_steps: u64,
    /// Gradient updates applied by the central learner.
    pub learner_updates: u64,
    /// Total NFV energy consumed by all actor nodes during training.
    pub training_energy_j: f64,
    /// SLA trained for.
    pub sla: Sla,
}

/// Shared state between actors and the learner.
struct Shared {
    replay: Mutex<PrioritizedReplay>,
    params: RwLock<DdpgParams>,
    actors_done: AtomicU64,
    stop_learner: AtomicBool,
    actor_steps: AtomicU64,
}

/// Trains a policy with the distributed Ape-X framework.
pub fn train_apex(sla: Sla, cfg: &ApexConfig) -> ApexOutcome {
    let env_cfg = EnvConfig::paper(sla, cfg.seed);
    let action_space = env_cfg.action_space;
    let mut learner_agent = DdpgAgent::new(STATE_DIM, 5, cfg.ddpg, cfg.seed);
    if let Some(params) = &cfg.initial_params {
        learner_agent
            .import_params(params)
            .expect("warm-start params are valid exported JSON");
        learner_agent.sync_targets();
    }
    let shared = Arc::new(Shared {
        replay: Mutex::new(PrioritizedReplay::new(
            cfg.replay_capacity,
            cfg.seed.wrapping_add(77),
        )),
        params: RwLock::new(learner_agent.export_params()),
        actors_done: AtomicU64::new(0),
        stop_learner: AtomicBool::new(false),
        actor_steps: AtomicU64::new(0),
    });

    let mut actor_energies = vec![0.0; cfg.actors];
    let mut final_agent: Option<DdpgAgent> = None;
    let mut learner_updates = 0u64;

    std::thread::scope(|scope| {
        // ---- Actor workers (Algorithm 3, NF_CONTROLLER) --------------------
        let mut handles = Vec::new();
        for worker in 0..cfg.actors {
            let shared = Arc::clone(&shared);
            let cfg = cfg.clone();
            let env_cfg = EnvConfig {
                seed: cfg.seed.wrapping_add(1000 + worker as u64),
                ..env_cfg.clone()
            };
            handles.push(scope.spawn(move || {
                let mut env = GreenNfvEnv::new(env_cfg);
                let mut agent =
                    DdpgAgent::new(STATE_DIM, 5, cfg.ddpg, cfg.seed.wrapping_add(worker as u64));
                let mut noise =
                    OrnsteinUhlenbeck::standard(5, cfg.seed.wrapping_add(2000 + worker as u64));
                let mut local: Vec<(Transition, f64)> = Vec::with_capacity(cfg.flush_every);
                // With a warm start, force the first sync to import the
                // learner's (checkpointed) policy instead of acting on a
                // fresh random net until the first publish.
                let mut version = if cfg.initial_params.is_some() {
                    u64::MAX
                } else {
                    0u64
                };
                let mut steps = 0usize;
                for ep in 0..cfg.episodes_per_actor {
                    noise.set_sigma(cfg.noise_sigma.at(u64::from(ep)));
                    noise.reset();
                    let mut state = env.reset();
                    loop {
                        // Pull the latest policy parameters periodically
                        // (REMOTE_CALL(central_learner.param)).
                        if steps.is_multiple_of(cfg.sync_every) {
                            let params = shared.params.read();
                            if params.version != version {
                                version = params.version;
                                agent
                                    .import_params(&params)
                                    .expect("learner params are valid JSON");
                                agent.sync_targets();
                            }
                        }
                        let mut action = agent.act(&state);
                        for (a, n) in action.iter_mut().zip(noise.sample()) {
                            *a = (*a + n).clamp(-1.0, 1.0);
                        }
                        if cfg.candidates_per_step > 1 && !env.is_multi_tenant() {
                            // Propose extra noise-perturbed variants and rank
                            // the whole candidate set in one batched sweep.
                            // (Skipped on multi-tenant nodes: what-if sweeps
                            // need a single-chain node.)
                            let mut candidates = vec![action.clone()];
                            for _ in 1..cfg.candidates_per_step {
                                let mut variant = action.clone();
                                for (a, n) in variant.iter_mut().zip(noise.sample()) {
                                    *a = (*a + n).clamp(-1.0, 1.0);
                                }
                                candidates.push(variant);
                            }
                            let swept = env.sweep_actions(&candidates);
                            let best = swept
                                .iter()
                                .enumerate()
                                .filter_map(|(i, r)| r.as_ref().ok().map(|o| (i, o.reward)))
                                .max_by(|a, b| a.1.total_cmp(&b.1))
                                .map_or(0, |(i, _)| i);
                            action = candidates.swap_remove(best);
                        }
                        let step = env.step(&action);
                        let tr = Transition {
                            state: state.clone(),
                            action,
                            reward: step.reward,
                            next_state: step.next_state.clone(),
                            done: step.done,
                        };
                        // Initial priority from the local TD error.
                        let td = agent.td_error(&tr);
                        local.push((tr, td));
                        state = step.next_state;
                        steps += 1;
                        shared.actor_steps.fetch_add(1, Ordering::Relaxed);
                        // Periodically: replay_buffer.STORE(local_buffer).
                        if local.len() >= cfg.flush_every {
                            let mut replay = shared.replay.lock();
                            for (t, td) in local.drain(..) {
                                replay.push_with_priority(t, td);
                            }
                        }
                        if step.done {
                            break;
                        }
                    }
                }
                if !local.is_empty() {
                    let mut replay = shared.replay.lock();
                    for (t, td) in local.drain(..) {
                        replay.push_with_priority(t, td);
                    }
                }
                shared.actors_done.fetch_add(1, Ordering::Release);
                env.cumulative_energy_j()
            }));
        }

        // ---- Central learner (Algorithm 3, CENTRAL_LEARNER) ----------------
        let learner = {
            let shared = Arc::clone(&shared);
            let cfg = cfg.clone();
            let mut agent = learner_agent;
            scope.spawn(move || {
                let mut updates = 0u64;
                loop {
                    let all_done =
                        shared.actors_done.load(Ordering::Acquire) as usize == cfg.actors;
                    let ready = { shared.replay.lock().len() >= cfg.warmup };
                    if !ready {
                        if all_done {
                            break;
                        }
                        std::thread::yield_now();
                        continue;
                    }
                    // Sample under the lock, learn outside it.
                    let batch = {
                        let mut replay = shared.replay.lock();
                        replay.sample(cfg.batch_size, cfg.beta.at(updates))
                    };
                    let (_, tds) = agent.update(&batch.transitions, &batch.weights);
                    {
                        let mut replay = shared.replay.lock();
                        replay.update_priorities(&batch.indices, &tds);
                        if updates > 0 && updates.is_multiple_of(cfg.evict_every) {
                            // Periodically remove old experiences (line 18).
                            let n = replay.len() / 10;
                            replay.evict_oldest(n);
                        }
                    }
                    updates += 1;
                    if updates.is_multiple_of(cfg.publish_every) {
                        *shared.params.write() = agent.export_params();
                    }
                    if all_done {
                        break;
                    }
                }
                *shared.params.write() = agent.export_params();
                (agent, updates)
            })
        };

        for (i, h) in handles.into_iter().enumerate() {
            actor_energies[i] = h.join().expect("actor thread must not panic");
        }
        shared.stop_learner.store(true, Ordering::Release);
        let (agent, updates) = learner.join().expect("learner thread must not panic");
        final_agent = Some(agent);
        learner_updates = updates;
    });

    ApexOutcome {
        agent: final_agent.expect("learner joined"),
        action_space,
        actor_steps: shared.actor_steps.load(Ordering::Relaxed),
        learner_updates,
        training_energy_j: actor_energies.iter().sum(),
        sla,
    }
}

impl ApexOutcome {
    /// Wraps the trained actor as a deployable controller.
    pub fn into_controller(self, name: &'static str) -> crate::controller::PolicyController {
        let params = self.agent.export_params();
        let actor = greennfv_nn::mlp::Mlp::from_json(&params.actor)
            .expect("actor exported by export_params parses");
        crate::controller::PolicyController::new(name, actor, self.action_space)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(actors: usize, episodes: u32) -> ApexConfig {
        ApexConfig {
            actors,
            episodes_per_actor: episodes,
            warmup: 128,
            seed: 11,
            ..ApexConfig::default()
        }
    }

    #[test]
    fn apex_trains_with_multiple_actors() {
        let out = train_apex(Sla::EnergyEfficiency, &quick_cfg(3, 12));
        assert_eq!(out.actor_steps, 3 * 12 * 8, "3 actors × 12 eps × 8 steps");
        assert!(out.learner_updates > 0, "learner must have learned");
        assert!(out.training_energy_j > 0.0);
    }

    #[test]
    fn apex_policy_is_deployable() {
        let out = train_apex(Sla::EnergyEfficiency, &quick_cfg(2, 10));
        let mut ctrl = out.into_controller("GreenNFV(apex)");
        let r = crate::controller::run_controller(
            &mut ctrl,
            &crate::controller::RunConfig::paper(4, 5),
        );
        assert_eq!(r.trace.len(), 4);
        for e in &r.trace {
            assert!(e.knobs.validate().is_ok());
        }
    }

    #[test]
    fn batched_candidate_exploration_trains() {
        let cfg = ApexConfig {
            candidates_per_step: 3,
            ..quick_cfg(2, 8)
        };
        let out = train_apex(Sla::EnergyEfficiency, &cfg);
        // Candidate sweeps are what-if only: env step counts are unchanged.
        assert_eq!(out.actor_steps, 2 * 8 * 8);
        assert!(out.training_energy_j > 0.0);
        let mut ctrl = out.into_controller("GreenNFV(apex-cand)");
        let r = crate::controller::run_controller(
            &mut ctrl,
            &crate::controller::RunConfig::paper(3, 5),
        );
        assert_eq!(r.trace.len(), 3);
    }

    #[test]
    fn warm_start_resumes_distributed_training_from_a_checkpoint() {
        // Train sequentially, checkpoint, then continue distributed from
        // the checkpointed policy: the learner must start from those
        // parameters (identical actions before any update) and keep
        // learning.
        use crate::train::{train_resumable, TrainConfig};
        let mut taken = None;
        train_resumable(
            EnvConfig::paper(Sla::EnergyEfficiency, 11),
            &TrainConfig::quick(6, 11),
            3,
            |ck| taken = Some(ck),
        );
        let ck = taken.expect("checkpoint was taken");
        let cfg = ApexConfig {
            initial_params: Some(ck.best_params.clone()),
            ..quick_cfg(2, 10)
        };
        let out = train_apex(Sla::EnergyEfficiency, &cfg);
        assert!(out.learner_updates > 0);
        assert!(out.training_energy_j > 0.0);
        // With no actor episodes the learner never updates, so its final
        // policy must be exactly the warm-start parameters.
        let idle = ApexConfig {
            initial_params: Some(ck.best_params.clone()),
            episodes_per_actor: 0,
            ..quick_cfg(1, 6)
        };
        let out = train_apex(Sla::EnergyEfficiency, &idle);
        assert_eq!(out.learner_updates, 0);
        let warm = greennfv_nn::mlp::Mlp::from_json(&ck.best_params.actor).unwrap();
        let s = [0.4, 0.3, 0.6, 0.2];
        assert_eq!(out.agent.act(&s), warm.infer_one(&s));
    }

    #[test]
    fn single_actor_apex_matches_sequential_interface() {
        let out = train_apex(Sla::paper_min_energy(), &quick_cfg(1, 8));
        assert_eq!(out.actor_steps, 64);
        assert_eq!(out.sla.name(), "MinE");
    }
}

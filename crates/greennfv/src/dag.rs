//! Experiment DAG: declare baseline → ablation → figure pipelines as data
//! and execute them through a content-addressed result memo.
//!
//! A paper reproduction is rarely one scenario — it is a *graph* of them: a
//! baseline, a handful of single-axis ablations patched off that baseline,
//! and figures that tabulate over the lot. [`ExperimentDag`] captures that
//! graph as a serde value (so a whole evaluation campaign round-trips
//! through JSON), and [`DagDriver`] executes it:
//!
//! 1. the DAG is validated (unique names, known dependencies, acyclic) and
//!    topologically sorted — deterministically, preserving declaration order
//!    among ready experiments;
//! 2. every scenario-producing experiment resolves to a concrete
//!    [`Scenario`] (ablations apply their [`ScenarioPatch`] to the resolved
//!    base) and is looked up in a [`MemoStore`] under its content-addressed
//!    [`Scenario::key`] before [`Scenario::run`] is invoked;
//! 3. figures memoize under the concatenated keys of their inputs.
//!
//! Because the memo key is the exact descriptor bytes (plus horizon and
//! seed), "re-run only the downstream cone of a change" needs no explicit
//! invalidation pass: editing one knob axis changes the patched scenario's
//! descriptor, hence its key, hence the key of every figure consuming it —
//! while untouched experiments still hit. `tests/dag_replay.rs` replays the
//! scenario-fuzz corpus through this driver twice and pins that the warm
//! run is bit-identical with a 100% scenario-level hit rate.

use std::collections::{HashMap, HashSet};
use std::mem::size_of;

use nfv_sim::prelude::*;
use serde::{Deserialize, Serialize};

use crate::report::table;
use crate::scenario::{Scenario, ScenarioRunResult, TenantEpochRecord, TenantSummary, TrafficSpec};

/// Leading tag of a figure memo key, versioned like the key tags in
/// [`nfv_sim::cache`].
const FIGURE_KEY_TAG: [u8; 8] = *b"FIGKEY1\0";

fn dag_err(msg: impl Into<String>) -> SimError {
    SimError::NodeConfig(format!("experiment dag: {}", msg.into()))
}

// ---------------------------------------------------------------------------
// Patches
// ---------------------------------------------------------------------------

/// A sparse, serializable edit applied to a resolved base [`Scenario`] by an
/// ablation experiment. Every field is optional; `None` leaves the base
/// value untouched. Knob axes apply to **every** tenant on every node —
/// ablations model "turn one platform knob", not per-tenant surgery (declare
/// a full [`ExperimentSpec::Scenario`] for the latter).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ScenarioPatch {
    /// Replace the master seed.
    #[serde(default)]
    pub seed: Option<u64>,
    /// Replace the epoch horizon.
    #[serde(default)]
    pub epochs: Option<u32>,
    /// Replace the batch evaluation mode.
    #[serde(default)]
    pub evaluation: Option<EvalMode>,
    /// Set every tenant's core frequency, GHz.
    #[serde(default)]
    pub freq_ghz: Option<f64>,
    /// Set every tenant's packet batch size.
    #[serde(default)]
    pub batch: Option<u32>,
    /// Set every tenant's LLC CAT fraction.
    #[serde(default)]
    pub llc_fraction: Option<f64>,
    /// Multiply every tenant's offered arrival rate (synthetic flow
    /// `rate_pps` and replay-trace point `rate_pps` alike) by this factor.
    #[serde(default)]
    pub arrival_scale: Option<f64>,
}

impl ScenarioPatch {
    /// True when the patch edits nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }

    /// Applies the patch to `base`, returning a new scenario named `name`.
    ///
    /// The result is re-validated, so a patch that pushes a knob out of
    /// range fails here rather than mid-run.
    pub fn apply(&self, base: &Scenario, name: &str) -> SimResult<Scenario> {
        if let Some(s) = self.arrival_scale {
            if !s.is_finite() || s <= 0.0 {
                return Err(dag_err(format!("arrival_scale {s} must be finite and > 0")));
            }
        }
        let mut sc = base.clone();
        sc.name = name.to_string();
        if let Some(seed) = self.seed {
            sc.seed = seed;
        }
        if let Some(epochs) = self.epochs {
            sc.epochs = epochs;
        }
        if let Some(evaluation) = self.evaluation {
            sc.evaluation = evaluation;
        }
        for node in &mut sc.nodes {
            for tenant in &mut node.tenants {
                if let Some(f) = self.freq_ghz {
                    tenant.knobs.freq_ghz = f;
                }
                if let Some(b) = self.batch {
                    tenant.knobs.batch = b;
                }
                if let Some(l) = self.llc_fraction {
                    tenant.knobs.llc_fraction = l;
                }
                if let Some(s) = self.arrival_scale {
                    tenant.traffic = scale_traffic(&tenant.traffic, s)?;
                }
                // Scenario::validate defers knob range checks to cluster
                // build; fail a bad patch here instead, before anything runs.
                tenant.knobs.validate()?;
            }
        }
        sc.validate()?;
        Ok(sc)
    }
}

/// Scales every offered rate in a traffic spec by `scale`.
fn scale_traffic(traffic: &TrafficSpec, scale: f64) -> SimResult<TrafficSpec> {
    match traffic {
        TrafficSpec::Flows(flows) => {
            let scaled: Vec<FlowSpec> = flows
                .flows()
                .iter()
                .map(|f| FlowSpec {
                    rate_pps: f.rate_pps * scale,
                    ..*f
                })
                .collect();
            let set = FlowSet::new(scaled).map_err(|e| dag_err(format!("scaled flows: {e}")))?;
            Ok(TrafficSpec::Flows(set))
        }
        TrafficSpec::Replay { trace, jitter_frac } => {
            let points: Vec<TracePoint> = trace
                .points()
                .iter()
                .map(|p| TracePoint {
                    rate_pps: p.rate_pps * scale,
                    ..*p
                })
                .collect();
            Ok(TrafficSpec::Replay {
                trace: Trace::new(trace.name(), points)?,
                jitter_frac: *jitter_frac,
            })
        }
    }
}

// ---------------------------------------------------------------------------
// The DAG
// ---------------------------------------------------------------------------

/// What one experiment node computes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ExperimentSpec {
    /// A fully specified scenario run (a baseline). The descriptor's own
    /// `name` is overwritten with the experiment name at resolution time so
    /// every experiment's memo key is stamped with its position in the DAG.
    Scenario(Box<Scenario>),
    /// A patched variant of another scenario-producing experiment.
    Ablation {
        /// Name of the experiment whose resolved scenario is patched. May
        /// itself be an ablation (patches chain).
        base: String,
        /// The edit.
        patch: ScenarioPatch,
    },
    /// A summary table over named scenario-producing experiments, one row
    /// per input, in input order.
    Figure {
        /// Names of the experiments to tabulate.
        inputs: Vec<String>,
    },
}

impl ExperimentSpec {
    /// Names of the experiments this spec depends on.
    #[must_use]
    pub fn deps(&self) -> Vec<&str> {
        match self {
            ExperimentSpec::Scenario(_) => Vec::new(),
            ExperimentSpec::Ablation { base, .. } => vec![base.as_str()],
            ExperimentSpec::Figure { inputs } => inputs.iter().map(String::as_str).collect(),
        }
    }

    /// True when this spec resolves to a runnable [`Scenario`].
    #[must_use]
    pub fn produces_scenario(&self) -> bool {
        !matches!(self, ExperimentSpec::Figure { .. })
    }
}

/// One named node of an [`ExperimentDag`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Experiment {
    /// Unique name; dependency edges refer to it.
    pub name: String,
    /// What to compute.
    pub spec: ExperimentSpec,
}

/// A declared set of experiments with dependency edges, executable by
/// [`DagDriver::run`]. Serializes as a plain JSON document, so a whole
/// evaluation campaign is a checked-in artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentDag {
    /// The experiments, in declaration order.
    pub experiments: Vec<Experiment>,
}

impl ExperimentDag {
    /// Wraps a list of experiments. Call [`ExperimentDag::validate`] (or
    /// just [`DagDriver::run`], which validates) before trusting it.
    #[must_use]
    pub fn new(experiments: Vec<Experiment>) -> Self {
        Self { experiments }
    }

    /// Serializes the DAG to JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("dag serialization is infallible")
    }

    /// Rebuilds a DAG from [`ExperimentDag::to_json`] output.
    pub fn from_json(text: &str) -> SimResult<Self> {
        serde_json::from_str(text).map_err(|e| dag_err(format!("JSON: {e}")))
    }

    /// Structural validation: at least one experiment, unique names, every
    /// dependency names a declared experiment of the right kind (ablation
    /// bases and figure inputs must produce scenarios), and the graph is
    /// acyclic.
    pub fn validate(&self) -> SimResult<()> {
        if self.experiments.is_empty() {
            return Err(dag_err("no experiments"));
        }
        let mut kinds: HashMap<&str, bool> = HashMap::new();
        for exp in &self.experiments {
            if exp.name.is_empty() {
                return Err(dag_err("experiment with empty name"));
            }
            if kinds
                .insert(exp.name.as_str(), exp.spec.produces_scenario())
                .is_some()
            {
                return Err(dag_err(format!("duplicate experiment name `{}`", exp.name)));
            }
        }
        for exp in &self.experiments {
            for dep in exp.spec.deps() {
                match kinds.get(dep) {
                    None => {
                        return Err(dag_err(format!(
                            "`{}` depends on unknown experiment `{dep}`",
                            exp.name
                        )));
                    }
                    Some(false) => {
                        return Err(dag_err(format!(
                            "`{}` depends on `{dep}`, which is a figure, not a scenario",
                            exp.name
                        )));
                    }
                    Some(true) => {}
                }
            }
        }
        self.topo_order()?;
        Ok(())
    }

    /// Deterministic topological order (indices into
    /// [`ExperimentDag::experiments`]): Kahn's algorithm, always emitting
    /// the first declared ready experiment next, so declaration order is
    /// preserved among independent experiments. Errs on a dependency cycle.
    pub fn topo_order(&self) -> SimResult<Vec<usize>> {
        let index: HashMap<&str, usize> = self
            .experiments
            .iter()
            .enumerate()
            .map(|(i, e)| (e.name.as_str(), i))
            .collect();
        let mut indegree = vec![0_usize; self.experiments.len()];
        for (i, exp) in self.experiments.iter().enumerate() {
            for dep in exp.spec.deps() {
                if index.contains_key(dep) {
                    indegree[i] += 1;
                }
            }
        }
        let mut emitted = vec![false; self.experiments.len()];
        let mut order = Vec::with_capacity(self.experiments.len());
        while order.len() < self.experiments.len() {
            let Some(next) = (0..self.experiments.len()).find(|&i| !emitted[i] && indegree[i] == 0)
            else {
                let stuck: Vec<&str> = self
                    .experiments
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !emitted[*i])
                    .map(|(_, e)| e.name.as_str())
                    .collect();
                return Err(dag_err(format!(
                    "dependency cycle among: {}",
                    stuck.join(", ")
                )));
            };
            emitted[next] = true;
            order.push(next);
            let name = self.experiments[next].name.as_str();
            for (i, exp) in self.experiments.iter().enumerate() {
                if !emitted[i] {
                    indegree[i] -= exp.spec.deps().iter().filter(|d| **d == name).count();
                }
            }
        }
        Ok(order)
    }
}

// ---------------------------------------------------------------------------
// Figures
// ---------------------------------------------------------------------------

/// One row of a [`FigureTable`]: a scenario experiment's cluster aggregates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureRow {
    /// The input experiment's name.
    pub experiment: String,
    /// Mean cluster throughput per epoch, Gbps.
    pub mean_throughput_gbps: f64,
    /// Mean cluster energy per epoch, joules.
    pub mean_energy_j: f64,
    /// Cluster energy efficiency, Gbps per kJ.
    pub efficiency: f64,
}

/// Output of an [`ExperimentSpec::Figure`]: one row per input, in input
/// order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureTable {
    /// The figure experiment's name.
    pub name: String,
    /// The rows.
    pub rows: Vec<FigureRow>,
}

impl FigureTable {
    /// Renders the figure as an aligned text table.
    #[must_use]
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.experiment.clone(),
                    format!("{:.3}", r.mean_throughput_gbps),
                    format!("{:.1}", r.mean_energy_j),
                    format!("{:.3}", r.efficiency),
                ]
            })
            .collect();
        format!(
            "{}\n{}",
            self.name,
            table(
                &["experiment", "tput (Gbps)", "energy (J)", "eff (Gbps/kJ)"],
                &rows,
            )
        )
    }
}

// ---------------------------------------------------------------------------
// The driver
// ---------------------------------------------------------------------------

/// How one experiment in a [`DagRunReport`] was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunAction {
    /// The scenario (or figure) was computed fresh and memoized.
    Executed,
    /// The result was served from the content-addressed memo.
    CacheHit,
}

/// An executed experiment's output.
#[derive(Debug, Clone, PartialEq)]
pub enum ExperimentOutput {
    /// Output of a scenario-producing experiment.
    Scenario(ScenarioRunResult),
    /// Output of a figure experiment.
    Figure(FigureTable),
}

/// One experiment's outcome within a [`DagRunReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentRun {
    /// Experiment name.
    pub name: String,
    /// Fresh execution or memo hit.
    pub action: RunAction,
    /// The output.
    pub output: ExperimentOutput,
}

/// Everything one [`DagDriver::run`] produced, in topological order.
#[derive(Debug, Clone, PartialEq)]
pub struct DagRunReport {
    /// Per-experiment outcomes, in execution (topological) order.
    pub runs: Vec<ExperimentRun>,
}

impl DagRunReport {
    /// Number of experiments computed fresh.
    #[must_use]
    pub fn executed(&self) -> usize {
        self.runs
            .iter()
            .filter(|r| r.action == RunAction::Executed)
            .count()
    }

    /// Number of experiments served from the memo.
    #[must_use]
    pub fn hits(&self) -> usize {
        self.runs.len() - self.executed()
    }

    /// An experiment's output by name.
    #[must_use]
    pub fn output(&self, name: &str) -> Option<&ExperimentOutput> {
        self.runs.iter().find(|r| r.name == name).map(|r| &r.output)
    }

    /// A scenario experiment's result by name.
    #[must_use]
    pub fn scenario(&self, name: &str) -> Option<&ScenarioRunResult> {
        match self.output(name)? {
            ExperimentOutput::Scenario(r) => Some(r),
            ExperimentOutput::Figure(_) => None,
        }
    }

    /// A figure experiment's table by name.
    #[must_use]
    pub fn figure(&self, name: &str) -> Option<&FigureTable> {
        match self.output(name)? {
            ExperimentOutput::Figure(t) => Some(t),
            ExperimentOutput::Scenario(_) => None,
        }
    }
}

/// Rough heap footprint of a memoized scenario result, for the store's LRU
/// byte accounting.
fn scenario_result_bytes(r: &ScenarioRunResult) -> usize {
    size_of::<ScenarioRunResult>()
        + r.name.len()
        + r.records.len() * (size_of::<TenantEpochRecord>() + 16)
        + r.tenants.len() * (size_of::<TenantSummary>() + 48)
}

fn figure_bytes(t: &FigureTable) -> usize {
    size_of::<FigureTable>()
        + t.name.len()
        + t.rows
            .iter()
            .map(|r| size_of::<FigureRow>() + r.experiment.len())
            .sum::<usize>()
}

/// Executes [`ExperimentDag`]s against persistent content-addressed memos.
///
/// One driver amortizes across calls: run a DAG, edit one experiment, run
/// it again — only the edited experiment and its downstream cone execute;
/// everything whose resolved descriptor is unchanged is a [`RunAction::CacheHit`].
/// Scenario results and figure tables live in separate [`MemoStore`]s so a
/// flood of cheap figure tables can never evict expensive scenario runs.
#[derive(Debug)]
pub struct DagDriver {
    runs: MemoStore<ScenarioRunResult>,
    figures: MemoStore<FigureTable>,
}

impl Default for DagDriver {
    fn default() -> Self {
        Self::new(DEFAULT_CACHE_BUDGET)
    }
}

impl DagDriver {
    /// A driver whose scenario and figure memos each hold at most
    /// `budget_bytes`. The stores are separate so figures can never evict
    /// scenario runs, but the figure memo needs a full-size budget of its
    /// own: a figure key embeds the complete canonical key of every input,
    /// so one wide figure's entry can outweigh all its tables combined.
    #[must_use]
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            runs: MemoStore::new(budget_bytes),
            figures: MemoStore::new(budget_bytes),
        }
    }

    /// Validates, topo-sorts, and executes `dag`, reusing memoized results.
    pub fn run(&self, dag: &ExperimentDag) -> SimResult<DagRunReport> {
        dag.validate()?;
        let order = dag.topo_order()?;
        let mut keys: HashMap<String, ScenarioKey> = HashMap::new();
        let mut resolved: HashMap<String, Scenario> = HashMap::new();
        let mut results: HashMap<String, ScenarioRunResult> = HashMap::new();
        let mut runs = Vec::with_capacity(order.len());
        for idx in order {
            let exp = &dag.experiments[idx];
            let run = match &exp.spec {
                ExperimentSpec::Scenario(sc) => {
                    let mut sc = (**sc).clone();
                    sc.name.clone_from(&exp.name);
                    sc.validate()?;
                    self.run_scenario(exp, sc, &mut keys, &mut resolved, &mut results)?
                }
                ExperimentSpec::Ablation { base, patch } => {
                    let base_sc = resolved
                        .get(base)
                        .expect("validated dependency resolved earlier in topo order");
                    let sc = patch.apply(base_sc, &exp.name)?;
                    self.run_scenario(exp, sc, &mut keys, &mut resolved, &mut results)?
                }
                ExperimentSpec::Figure { inputs } => self.run_figure(exp, inputs, &keys, &results),
            };
            runs.push(run);
        }
        Ok(DagRunReport { runs })
    }

    fn run_scenario(
        &self,
        exp: &Experiment,
        sc: Scenario,
        keys: &mut HashMap<String, ScenarioKey>,
        resolved: &mut HashMap<String, Scenario>,
        results: &mut HashMap<String, ScenarioRunResult>,
    ) -> SimResult<ExperimentRun> {
        let key = sc.key();
        let (out, action) = if let Some(hit) = self.runs.get(key.key()) {
            (hit, RunAction::CacheHit)
        } else {
            let out = sc.run()?;
            let bytes = scenario_result_bytes(&out);
            self.runs
                .insert_sized(key.clone().into_key(), out.clone(), bytes);
            (out, RunAction::Executed)
        };
        keys.insert(exp.name.clone(), key);
        resolved.insert(exp.name.clone(), sc);
        results.insert(exp.name.clone(), out.clone());
        Ok(ExperimentRun {
            name: exp.name.clone(),
            action,
            output: ExperimentOutput::Scenario(out),
        })
    }

    fn run_figure(
        &self,
        exp: &Experiment,
        inputs: &[String],
        keys: &HashMap<String, ScenarioKey>,
        results: &HashMap<String, ScenarioRunResult>,
    ) -> ExperimentRun {
        // The figure's identity is its name plus the exact keys of its
        // inputs (length-prefixed — scenario keys embed a variable-length
        // descriptor, so raw concatenation would be ambiguous). Any change
        // to any input's descriptor therefore changes the figure's key.
        let mut desc: Vec<u8> = FIGURE_KEY_TAG.to_vec();
        desc.extend_from_slice(&(exp.name.len() as u64).to_le_bytes());
        desc.extend_from_slice(exp.name.as_bytes());
        for input in inputs {
            let key = keys
                .get(input)
                .expect("validated dependency resolved earlier in topo order");
            desc.extend_from_slice(&(key.key().bytes().len() as u64).to_le_bytes());
            desc.extend_from_slice(key.key().bytes());
        }
        let key = CanonicalKey::from_bytes(desc);
        let (tbl, action) = if let Some(hit) = self.figures.get(&key) {
            (hit, RunAction::CacheHit)
        } else {
            let rows = inputs
                .iter()
                .map(|input| {
                    let r = results
                        .get(input)
                        .expect("validated dependency resolved earlier in topo order");
                    FigureRow {
                        experiment: input.clone(),
                        mean_throughput_gbps: r.mean_throughput_gbps,
                        mean_energy_j: r.mean_energy_j,
                        efficiency: r.efficiency,
                    }
                })
                .collect();
            let tbl = FigureTable {
                name: exp.name.clone(),
                rows,
            };
            let bytes = figure_bytes(&tbl);
            self.figures.insert_sized(key, tbl.clone(), bytes);
            (tbl, RunAction::Executed)
        };
        ExperimentRun {
            name: exp.name.clone(),
            action,
            output: ExperimentOutput::Figure(tbl),
        }
    }

    /// Counters of the scenario-result memo.
    #[must_use]
    pub fn scenario_stats(&self) -> CacheStats {
        self.runs.stats()
    }

    /// Counters of the figure-table memo.
    #[must_use]
    pub fn figure_stats(&self) -> CacheStats {
        self.figures.stats()
    }

    /// Drops all memoized results (lifetime counters survive).
    pub fn clear(&self) {
        self.runs.clear();
        self.figures.clear();
    }
}

/// Convenience: the names every scenario-producing experiment resolves to,
/// in declaration order. Handy for building a figure over "everything".
#[must_use]
pub fn scenario_experiment_names(dag: &ExperimentDag) -> Vec<String> {
    let known: HashSet<&str> = dag.experiments.iter().map(|e| e.name.as_str()).collect();
    debug_assert_eq!(known.len(), dag.experiments.len());
    dag.experiments
        .iter()
        .filter(|e| e.spec.produces_scenario())
        .map(|e| e.name.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_base() -> Scenario {
        let mut sc = Scenario::by_name("two-tenant-shared-node").unwrap();
        sc.epochs = 2;
        sc
    }

    fn demo_dag(patch: ScenarioPatch) -> ExperimentDag {
        ExperimentDag::new(vec![
            Experiment {
                name: "baseline".into(),
                spec: ExperimentSpec::Scenario(Box::new(tiny_base())),
            },
            Experiment {
                name: "ablation".into(),
                spec: ExperimentSpec::Ablation {
                    base: "baseline".into(),
                    patch,
                },
            },
            Experiment {
                name: "side".into(),
                spec: ExperimentSpec::Scenario(Box::new({
                    let mut sc = tiny_base();
                    sc.seed = 777;
                    sc
                })),
            },
            Experiment {
                name: "figure".into(),
                spec: ExperimentSpec::Figure {
                    inputs: vec!["baseline".into(), "ablation".into()],
                },
            },
        ])
    }

    fn freq_patch(f: f64) -> ScenarioPatch {
        ScenarioPatch {
            freq_ghz: Some(f),
            ..ScenarioPatch::default()
        }
    }

    #[test]
    fn patch_applies_every_axis() {
        let base = tiny_base();
        let patch = ScenarioPatch {
            seed: Some(99),
            epochs: Some(5),
            evaluation: Some(EvalMode::Incremental),
            freq_ghz: Some(2.0),
            batch: Some(96),
            llc_fraction: Some(0.3),
            arrival_scale: Some(0.5),
        };
        let patched = patch.apply(&base, "patched").unwrap();
        assert_eq!(patched.name, "patched");
        assert_eq!(patched.seed, 99);
        assert_eq!(patched.epochs, 5);
        assert_eq!(patched.evaluation, EvalMode::Incremental);
        for (node, base_node) in patched.nodes.iter().zip(&base.nodes) {
            for (tenant, base_tenant) in node.tenants.iter().zip(&base_node.tenants) {
                assert_eq!(tenant.knobs.freq_ghz, 2.0);
                assert_eq!(tenant.knobs.batch, 96);
                assert_eq!(tenant.knobs.llc_fraction, 0.3);
                match (&tenant.traffic, &base_tenant.traffic) {
                    (TrafficSpec::Flows(a), TrafficSpec::Flows(b)) => {
                        for (fa, fb) in a.flows().iter().zip(b.flows()) {
                            assert_eq!(fa.rate_pps, fb.rate_pps * 0.5);
                        }
                    }
                    (
                        TrafficSpec::Replay { trace: a, .. },
                        TrafficSpec::Replay { trace: b, .. },
                    ) => {
                        for (pa, pb) in a.points().iter().zip(b.points()) {
                            assert_eq!(pa.rate_pps, pb.rate_pps * 0.5);
                        }
                    }
                    _ => panic!("patch changed the traffic spec kind"),
                }
            }
        }
    }

    #[test]
    fn patch_scales_replay_traces() {
        let base = Scenario::by_name("diurnal-trace").unwrap();
        let patched = ScenarioPatch {
            arrival_scale: Some(2.0),
            ..ScenarioPatch::default()
        }
        .apply(&base, "x2")
        .unwrap();
        let rate = |sc: &Scenario| match &sc.nodes[0].tenants[0].traffic {
            TrafficSpec::Replay { trace, .. } => trace.points()[0].rate_pps,
            TrafficSpec::Flows(_) => panic!("diurnal-trace replays a trace"),
        };
        assert_eq!(rate(&patched), rate(&base) * 2.0);
    }

    #[test]
    fn patch_rejects_bad_values() {
        let base = tiny_base();
        assert!(freq_patch(99.0).apply(&base, "bad").is_err());
        let bad_scale = ScenarioPatch {
            arrival_scale: Some(0.0),
            ..ScenarioPatch::default()
        };
        assert!(bad_scale.apply(&base, "bad").is_err());
    }

    #[test]
    fn empty_patch_changes_only_the_name_but_still_rekeys() {
        let base = tiny_base();
        let patched = ScenarioPatch::default().apply(&base, "renamed").unwrap();
        let mut renamed = base.clone();
        renamed.name = "renamed".into();
        assert_eq!(patched, renamed);
        // The name is part of the descriptor, so even an identity patch is
        // a distinct content-addressed experiment.
        assert_ne!(patched.key(), base.key());
    }

    #[test]
    fn dag_serde_round_trips() {
        let dag = demo_dag(freq_patch(2.0));
        let back = ExperimentDag::from_json(&dag.to_json()).unwrap();
        assert_eq!(back, dag);
    }

    #[test]
    fn validate_rejects_malformed_dags() {
        let dup = ExperimentDag::new(vec![
            Experiment {
                name: "a".into(),
                spec: ExperimentSpec::Scenario(Box::new(tiny_base())),
            },
            Experiment {
                name: "a".into(),
                spec: ExperimentSpec::Scenario(Box::new(tiny_base())),
            },
        ]);
        assert!(dup.validate().is_err());

        let unknown = ExperimentDag::new(vec![Experiment {
            name: "abl".into(),
            spec: ExperimentSpec::Ablation {
                base: "missing".into(),
                patch: ScenarioPatch::default(),
            },
        }]);
        assert!(unknown.validate().is_err());

        let fig_on_fig = ExperimentDag::new(vec![
            Experiment {
                name: "base".into(),
                spec: ExperimentSpec::Scenario(Box::new(tiny_base())),
            },
            Experiment {
                name: "fig1".into(),
                spec: ExperimentSpec::Figure {
                    inputs: vec!["base".into()],
                },
            },
            Experiment {
                name: "fig2".into(),
                spec: ExperimentSpec::Figure {
                    inputs: vec!["fig1".into()],
                },
            },
        ]);
        assert!(fig_on_fig.validate().is_err());

        let cycle = ExperimentDag::new(vec![
            Experiment {
                name: "a".into(),
                spec: ExperimentSpec::Ablation {
                    base: "b".into(),
                    patch: ScenarioPatch::default(),
                },
            },
            Experiment {
                name: "b".into(),
                spec: ExperimentSpec::Ablation {
                    base: "a".into(),
                    patch: ScenarioPatch::default(),
                },
            },
        ]);
        assert!(cycle.validate().is_err());
    }

    #[test]
    fn topo_order_is_declaration_stable() {
        // Figure declared first, depending on later scenarios; independent
        // experiments keep declaration order.
        let dag = ExperimentDag::new(vec![
            Experiment {
                name: "fig".into(),
                spec: ExperimentSpec::Figure {
                    inputs: vec!["s2".into(), "s1".into()],
                },
            },
            Experiment {
                name: "s1".into(),
                spec: ExperimentSpec::Scenario(Box::new(tiny_base())),
            },
            Experiment {
                name: "s2".into(),
                spec: ExperimentSpec::Ablation {
                    base: "s1".into(),
                    patch: ScenarioPatch::default(),
                },
            },
        ]);
        assert_eq!(dag.topo_order().unwrap(), vec![1, 2, 0]);
        assert!(dag.validate().is_ok());
    }

    #[test]
    fn driver_serves_warm_reruns_entirely_from_memo() {
        let dag = demo_dag(freq_patch(2.0));
        let driver = DagDriver::default();
        let cold = driver.run(&dag).unwrap();
        assert_eq!(cold.executed(), 4);
        assert_eq!(cold.hits(), 0);
        let warm = driver.run(&dag).unwrap();
        assert_eq!(warm.executed(), 0);
        assert_eq!(warm.hits(), 4);
        assert_eq!(warm.runs, {
            let mut expect = cold.runs.clone();
            for r in &mut expect {
                r.action = RunAction::CacheHit;
            }
            expect
        });
        assert_eq!(driver.scenario_stats().hits, 3);
        assert_eq!(driver.figure_stats().hits, 1);
    }

    #[test]
    fn editing_one_axis_recomputes_only_the_downstream_cone() {
        let driver = DagDriver::default();
        driver.run(&demo_dag(freq_patch(2.0))).unwrap();
        // Change the ablation's knob axis: baseline and the unrelated
        // scenario hit; the ablation and the figure over it re-run.
        let report = driver.run(&demo_dag(freq_patch(1.9))).unwrap();
        let action = |name: &str| {
            report
                .runs
                .iter()
                .find(|r| r.name == name)
                .map(|r| r.action)
                .unwrap()
        };
        assert_eq!(action("baseline"), RunAction::CacheHit);
        assert_eq!(action("side"), RunAction::CacheHit);
        assert_eq!(action("ablation"), RunAction::Executed);
        assert_eq!(action("figure"), RunAction::Executed);
    }

    #[test]
    fn figure_rows_match_scenario_outputs() {
        let dag = demo_dag(freq_patch(2.0));
        let report = DagDriver::default().run(&dag).unwrap();
        let fig = report.figure("figure").unwrap();
        assert_eq!(fig.rows.len(), 2);
        for row in &fig.rows {
            let sc = report.scenario(&row.experiment).unwrap();
            assert_eq!(row.mean_throughput_gbps, sc.mean_throughput_gbps);
            assert_eq!(row.mean_energy_j, sc.mean_energy_j);
            assert_eq!(row.efficiency, sc.efficiency);
        }
        let rendered = fig.render();
        assert!(rendered.contains("baseline") && rendered.contains("ablation"));
        assert_eq!(
            scenario_experiment_names(&dag),
            vec!["baseline", "ablation", "side"]
        );
    }
}

//! EE-Pstate (Iqbal & John 2012): threshold-driven P-state management with a
//! double-exponential-smoothing (DES) traffic predictor.
//!
//! The comparison model from the paper's §5: predicts the next window's
//! packet arrival rate with DES, then picks the lowest P-state (frequency)
//! whose estimated capacity covers the predicted load with headroom. C-states
//! reduce idle power (modeled as adaptive sleep), but all other knobs stay at
//! their defaults — the paper's criticism of this approach.

use nfv_sim::prelude::*;
use serde::{Deserialize, Serialize};

use crate::controller::Controller;

/// Double exponential smoothing (Holt's linear trend) predictor.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DesPredictor {
    /// Level smoothing factor.
    pub alpha: f64,
    /// Trend smoothing factor.
    pub beta: f64,
    level: Option<f64>,
    trend: f64,
}

impl DesPredictor {
    /// Creates a predictor with the given smoothing factors.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha) && (0.0..=1.0).contains(&beta));
        Self {
            alpha,
            beta,
            level: None,
            trend: 0.0,
        }
    }

    /// Feeds an observation and returns the one-step-ahead forecast.
    pub fn observe(&mut self, value: f64) -> f64 {
        match self.level {
            None => {
                self.level = Some(value);
                value
            }
            Some(prev_level) => {
                let level = self.alpha * value + (1.0 - self.alpha) * (prev_level + self.trend);
                self.trend = self.beta * (level - prev_level) + (1.0 - self.beta) * self.trend;
                self.level = Some(level);
                level + self.trend
            }
        }
    }

    /// Current forecast without feeding a new sample.
    pub fn forecast(&self) -> f64 {
        self.level.map_or(0.0, |l| l + self.trend)
    }
}

/// EE-Pstate controller.
#[derive(Debug)]
pub struct EePstateController {
    predictor: DesPredictor,
    scaler: FreqScaler,
    /// Capacity headroom kept above the predicted load (e.g. 1.2 = 20%).
    pub headroom: f64,
    /// Estimated packets/s each GHz of one core can process (learned online
    /// from observed throughput and utilization).
    pps_per_ghz: f64,
}

impl Default for EePstateController {
    fn default() -> Self {
        Self {
            predictor: DesPredictor::new(0.5, 0.3),
            scaler: FreqScaler::new(Governor::Userspace),
            headroom: 1.2,
            pps_per_ghz: 4.0e5,
        }
    }
}

impl Controller for EePstateController {
    fn name(&self) -> &'static str {
        "EE-Pstate"
    }

    fn platform(&self) -> PlatformPolicy {
        // C-state management reduces both active and idle power: model as
        // adaptive sleep plus deep C-states on unused cores.
        PlatformPolicy {
            poll_mode: PollMode::AdaptiveSleep,
            idle_core_power_off: true,
        }
    }

    fn initial_knobs(&self, _flows: &FlowSet) -> KnobSettings {
        // Default everything except the P-state machinery (2 cores, batch 32).
        KnobSettings::default_tuned()
    }

    fn decide(&mut self, telemetry: &ChainTelemetry, current: &KnobSettings) -> KnobSettings {
        // Update the per-GHz service-rate estimate from what actually ran.
        let used_ghz =
            current.freq_ghz * current.cpu.effective_cores() * telemetry.cpu_util.max(0.05);
        if telemetry.throughput_gbps > 0.0 && used_ghz > 0.0 {
            // packets/s = Gbps → pps via observed mean packet size proxy.
            let observed_pps = telemetry.arrival_pps * (1.0 - telemetry.loss_frac);
            let sample = observed_pps / used_ghz;
            self.pps_per_ghz = 0.8 * self.pps_per_ghz + 0.2 * sample;
        }
        // Predict next-window load and choose the lowest adequate P-state.
        let predicted_pps = self.predictor.observe(telemetry.arrival_pps).max(0.0);
        let needed_ghz =
            predicted_pps * self.headroom / (self.pps_per_ghz * current.cpu.effective_cores());
        let mut next = *current;
        let target = needed_ghz.clamp(FREQ_MIN_GHZ, FREQ_MAX_GHZ);
        next.freq_ghz = self.scaler.snap(target);
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::BaselineController;
    use crate::controller::{run_controller, RunConfig};

    #[test]
    fn des_tracks_linear_trend() {
        let mut p = DesPredictor::new(0.6, 0.4);
        let mut forecast = 0.0;
        for i in 0..50 {
            forecast = p.observe(100.0 + 10.0 * i as f64);
        }
        // Next value would be 100 + 10*50 = 600; DES should be close.
        assert!((forecast - 600.0).abs() < 20.0, "forecast {forecast}");
    }

    #[test]
    fn des_converges_on_constant_signal() {
        let mut p = DesPredictor::new(0.3, 0.2);
        for _ in 0..100 {
            p.observe(500.0);
        }
        assert!((p.forecast() - 500.0).abs() < 1.0);
    }

    #[test]
    fn low_load_selects_low_pstate() {
        let mut c = EePstateController::default();
        let k = c.initial_knobs(&FlowSet::evaluation_five_flows());
        let idle = ChainTelemetry {
            throughput_gbps: 0.1,
            energy_j: 1500.0,
            cpu_util: 0.05,
            arrival_pps: 1e4,
            miss_rate: 0.1,
            loss_frac: 0.0,
        };
        let mut next = k;
        for _ in 0..5 {
            next = c.decide(&idle, &next);
        }
        assert!((next.freq_ghz - FREQ_MIN_GHZ).abs() < 1e-9);
    }

    #[test]
    fn high_load_selects_high_pstate() {
        let mut c = EePstateController::default();
        let k = c.initial_knobs(&FlowSet::evaluation_five_flows());
        let busy = ChainTelemetry {
            throughput_gbps: 9.0,
            energy_j: 2000.0,
            cpu_util: 1.0,
            arrival_pps: 5e6,
            miss_rate: 0.1,
            loss_frac: 0.3,
        };
        let mut next = k;
        for _ in 0..5 {
            next = c.decide(&busy, &next);
        }
        assert!(next.freq_ghz > 1.8, "freq {}", next.freq_ghz);
    }

    #[test]
    fn only_frequency_is_tuned() {
        let mut c = EePstateController::default();
        let k = c.initial_knobs(&FlowSet::evaluation_five_flows());
        let t = ChainTelemetry {
            throughput_gbps: 4.0,
            energy_j: 1800.0,
            cpu_util: 0.6,
            arrival_pps: 2e6,
            miss_rate: 0.1,
            loss_frac: 0.1,
        };
        let next = c.decide(&t, &k);
        assert_eq!(next.batch, k.batch);
        assert_eq!(next.cpu, k.cpu);
        assert_eq!(next.dma, k.dma);
        assert!((next.llc_fraction - k.llc_fraction).abs() < 1e-12);
    }

    #[test]
    fn eepstate_beats_baseline() {
        let cfg = RunConfig::paper(30, 5);
        let base = run_controller(&mut BaselineController, &cfg);
        let ee = run_controller(&mut EePstateController::default(), &cfg);
        assert!(ee.mean_throughput_gbps > base.mean_throughput_gbps);
        assert!(ee.mean_energy_j < base.mean_energy_j);
    }
}

//! Seeded, grammar-driven scenario fuzzing.
//!
//! [`corpus`] expands one master seed into a list of structurally valid
//! [`Scenario`] descriptors by walking a small generation grammar instead of
//! drawing raw field values: every draw is made against the subsystem's own
//! budgets (node core budget, CAT way budget, profile frequency range,
//! packet-size and batch bounds), so a generated scenario always passes
//! [`Scenario::validate`] *and* [`Scenario::build_cluster`] — the corpus
//! probes the evaluation paths, not the input validators.
//!
//! Each scenario is stamped from one of five [`FuzzShape`]s, the stress
//! patterns the registry's hand-written scenarios only sample pointwise:
//!
//! * **flash crowd** — replayed traffic with a mid-horizon spike segment at
//!   several times the steady rate, then recovery;
//! * **node failure** — one node's tenants black out mid-horizon (their
//!   replay rate collapses) while the survivors absorb a failover surge;
//! * **DVFS throttle** — edge-profile nodes pinned at their minimum
//!   frequency while the offered load ramps to a peak (thermal capping);
//! * **tenant storm** — many bursty on/off tenants crammed onto few nodes
//!   under tight way partitioning and loss caps;
//! * **diurnal fleet** — tens of nodes on flat plateau replays with one
//!   jittered diurnal churn node, the incremental-evaluation regime.
//!
//! Everything is deterministic: the same `(seed, n)` produces the same
//! corpus, and each scenario's own master seed makes its runs reproducible.
//! `tests/fuzz_corpus.rs` runs the corpus differentially — fused vs serial
//! epochs and full vs incremental evaluation, bit for bit — and the CI
//! fuzz-smoke job replays it on every push. Corpus members that earn a
//! permanent slot graduate into [`Scenario::registry`] as hand-written
//! constructors (see `flash-crowd-replay` and friends) so later generator
//! changes can never silently rewrite a named scenario.

use nfv_sim::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::scenario::{NodeSpec, Scenario, TenantSpec, TrafficSpec};
use crate::sla::{Sla, TenantSla};

/// Stress pattern a fuzzed scenario is built around.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuzzShape {
    /// Mid-horizon traffic spike at several times the steady rate.
    FlashCrowd,
    /// One node's traffic collapses mid-horizon; survivors absorb a surge.
    NodeFailure,
    /// Edge nodes pinned at minimum frequency under a ramping load.
    DvfsThrottle,
    /// Many bursty on/off tenants under tight partitioning and loss caps.
    TenantStorm,
    /// A plateau fleet with one diurnal churn node (incremental regime).
    DiurnalFleet,
}

impl FuzzShape {
    /// Every shape, in the order the corpus cycles through them.
    pub const ALL: [FuzzShape; 5] = [
        FuzzShape::FlashCrowd,
        FuzzShape::NodeFailure,
        FuzzShape::DvfsThrottle,
        FuzzShape::TenantStorm,
        FuzzShape::DiurnalFleet,
    ];

    /// Short name, used in generated scenario names.
    pub fn name(self) -> &'static str {
        match self {
            FuzzShape::FlashCrowd => "flash-crowd",
            FuzzShape::NodeFailure => "node-failure",
            FuzzShape::DvfsThrottle => "dvfs-throttle",
            FuzzShape::TenantStorm => "tenant-storm",
            FuzzShape::DiurnalFleet => "diurnal-fleet",
        }
    }
}

/// SplitMix64-style avalanche so per-scenario seeds never alias even for
/// adjacent corpus indices.
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Generates one valid scenario from `seed`, cycling the [`FuzzShape`]s so
/// any contiguous seed range covers every shape.
pub fn fuzz_scenario(seed: u64) -> Scenario {
    let shape = FuzzShape::ALL[(seed % FuzzShape::ALL.len() as u64) as usize];
    fuzz_scenario_shaped(shape, seed)
}

/// Generates one valid scenario of the given shape from `seed`.
pub fn fuzz_scenario_shaped(shape: FuzzShape, seed: u64) -> Scenario {
    let mut g = Gen {
        rng: StdRng::seed_from_u64(mix(seed, 0x5ce0)),
    };
    let mut sc = match shape {
        FuzzShape::FlashCrowd => g.flash_crowd(),
        FuzzShape::NodeFailure => g.node_failure(),
        FuzzShape::DvfsThrottle => g.dvfs_throttle(),
        FuzzShape::TenantStorm => g.tenant_storm(),
        FuzzShape::DiurnalFleet => g.diurnal_fleet(),
    };
    sc.name = format!("fuzz-{}-{seed:016x}", shape.name());
    sc.seed = seed;
    sc
}

/// Expands `seed` into `n` valid scenarios (the seeded fuzz corpus).
pub fn corpus(seed: u64, n: usize) -> Vec<Scenario> {
    (0..n as u64).map(|i| fuzz_scenario(mix(seed, i))).collect()
}

/// Cores available to NF chains on every node (the allocator reserves the
/// manager cores out of [`SimTuning`]'s default core count).
const NF_CORE_BUDGET: u32 = 14;

/// Ceiling on the summed per-node `llc_fraction` draws. Way rounding can add
/// up to half a way per tenant, so the margin keeps the rounded total inside
/// even the edge profile's 11 application ways for up to 5 tenants.
const LLC_BUDGET: f64 = 0.75;

/// The packet-size grid the generator draws from (wire bytes).
const PACKET_SIZES: [u32; 7] = [64, 128, 256, 512, 1024, 1280, 1518];

/// The batch-size grid (all inside the engine's `[1, 320]` bound).
const BATCHES: [u32; 8] = [1, 8, 16, 32, 64, 128, 256, 320];

struct Gen {
    rng: StdRng,
}

impl Gen {
    // -- primitive draws ---------------------------------------------------

    fn packet_size(&mut self) -> u32 {
        PACKET_SIZES[self.rng.random_range(0..PACKET_SIZES.len())]
    }

    fn burstiness(&mut self) -> f64 {
        self.rng.random_range(1.0..=3.0)
    }

    /// Mean offered rate in pps, spanning trickle to stress.
    fn rate(&mut self) -> f64 {
        self.rng.random_range(1.0e5..2.0e6)
    }

    /// A frequency on the DVFS ladder inside `profile`'s range.
    fn freq_for(&mut self, profile: &NodeProfile) -> f64 {
        let steps = ((profile.freq_max_ghz - profile.freq_min_ghz) / FREQ_STEP_GHZ).round() as u32;
        let k = self.rng.random_range(0..=steps);
        (profile.freq_min_ghz + FREQ_STEP_GHZ * f64::from(k)).min(profile.freq_max_ghz)
    }

    /// A random chain: a shuffled subset of the NF catalogue (no duplicate
    /// kinds, length within the chain cap).
    fn chain(&mut self, max_len: usize) -> Vec<NfKind> {
        let mut kinds = NfKind::ALL;
        // Fisher–Yates; taking the first `len` gives a uniform subset.
        for i in (1..kinds.len()).rev() {
            kinds.swap(i, self.rng.random_range(0..=i));
        }
        let len = self.rng.random_range(1..=max_len.min(kinds.len()));
        kinds[..len].to_vec()
    }

    /// Splits the per-node core budget across `tenants`, each getting 1–3
    /// cores and the total never exceeding [`NF_CORE_BUDGET`].
    fn core_split(&mut self, tenants: usize) -> Vec<u32> {
        let mut left = NF_CORE_BUDGET;
        (0..tenants as u32)
            .map(|i| {
                let rest = tenants as u32 - i - 1; // later tenants need >= 1 each
                let hi = (left - rest).clamp(1, 3);
                let c = self.rng.random_range(1..=hi);
                left -= c;
                c
            })
            .collect()
    }

    /// Per-tenant LLC fractions whose sum stays under [`LLC_BUDGET`].
    fn llc_split(&mut self, tenants: usize) -> Vec<f64> {
        let per = LLC_BUDGET / tenants as f64;
        (0..tenants)
            .map(|_| self.rng.random_range(0.05..per))
            .collect()
    }

    fn knobs(&mut self, profile: &NodeProfile, cores: u32, llc_fraction: f64) -> KnobSettings {
        let share = if self.rng.random_bool(0.25) {
            self.rng.random_range(0.5..=1.0)
        } else {
            1.0
        };
        KnobSettings {
            cpu: CpuAllocation { cores, share },
            freq_ghz: self.freq_for(profile),
            llc_fraction,
            dma: DmaBuffer::from_mb(f64::from(self.rng.random_range(1..=40u32))),
            batch: BATCHES[self.rng.random_range(0..BATCHES.len())],
        }
    }

    fn sla(&mut self) -> TenantSla {
        let base = match self.rng.random_range(0..4u32) {
            0 => TenantSla::new(Sla::EnergyEfficiency),
            1 => TenantSla::new(Sla::MinEnergy {
                throughput_floor_gbps: self.rng.random_range(0.05..0.5),
            }),
            2 => TenantSla::new(Sla::MaxThroughput {
                energy_cap_j: self.rng.random_range(500.0..50_000.0),
            }),
            _ => TenantSla::new(Sla::EnergyEfficiency)
                .with_loss_cap(self.rng.random_range(0.05..0.3)),
        };
        if self.rng.random_bool(0.3) {
            base.with_weight(self.rng.random_range(0.5..2.0))
        } else {
            base
        }
    }

    /// Scenario skeleton with the model-level draws (epoch count, epoch
    /// length, evaluation mode) filled in; the caller supplies nodes.
    fn skeleton(&mut self, epochs: u32, epoch_s: f64, nodes: Vec<NodeSpec>) -> Scenario {
        Scenario {
            name: String::new(), // stamped by the caller
            epochs,
            seed: 0, // stamped by the caller
            tuning: SimTuning {
                epoch_s,
                ..SimTuning::default()
            },
            policy: if self.rng.random_bool(0.2) {
                PlatformPolicy::baseline()
            } else {
                PlatformPolicy::greennfv()
            },
            // Evaluation mode is a pure cost knob (bit-identical results);
            // mixing it into the corpus keeps the differential harness
            // honest about that claim.
            shards: 0,
            evaluation: if self.rng.random_bool(0.3) {
                EvalMode::Incremental
            } else {
                EvalMode::Full
            },
            nodes,
        }
    }

    /// A segmented replay trace: `(relative duration, relative rate)` pairs
    /// scaled onto the scenario horizon so the segments land where the shape
    /// wants them (spike mid-horizon, blackout mid-horizon, …).
    fn segmented_trace(
        &mut self,
        name: &str,
        horizon_s: f64,
        base_pps: f64,
        segments: &[(f64, f64)],
    ) -> Trace {
        let total: f64 = segments.iter().map(|(d, _)| d).sum();
        let size = self.packet_size();
        let burst = self.burstiness();
        let points = segments
            .iter()
            .map(|&(dur, scale)| TracePoint {
                duration_s: (dur / total * horizon_s).max(1.0),
                rate_pps: base_pps * scale,
                packet_size: size,
                burstiness: burst,
            })
            .collect();
        Trace::new(name, points).expect("generated segments are valid")
    }

    fn tenant(&mut self, name: String, profile: &NodeProfile, cores: u32, llc: f64) -> TenantSpec {
        TenantSpec {
            name,
            nfs: self.chain(4),
            sla: self.sla(),
            knobs: self.knobs(profile, cores, llc),
            traffic: TrafficSpec::Flows(
                FlowSet::new(vec![if self.rng.random_bool(0.5) {
                    FlowSpec::poisson(0, self.rate(), self.packet_size())
                } else {
                    FlowSpec::cbr(0, self.rate(), self.packet_size())
                }])
                .expect("generated flows are valid"),
            ),
        }
    }

    // -- shape builders ----------------------------------------------------

    /// Replayed traffic with a mid-horizon spike at 3–6× the steady rate.
    fn flash_crowd(&mut self) -> Scenario {
        let epochs = self.rng.random_range(3..=4u32);
        let epoch_s = 30.0;
        let horizon = f64::from(epochs) * epoch_s;
        let n_nodes = self.rng.random_range(1..=3usize);
        let nodes = (0..n_nodes)
            .map(|ni| {
                let profile = if self.rng.random_bool(0.5) {
                    NodeProfile::paper_default()
                } else {
                    NodeProfile::high_perf()
                };
                let n_tenants = self.rng.random_range(1..=2usize);
                let cores = self.core_split(n_tenants);
                let llc = self.llc_split(n_tenants);
                let tenants = (0..n_tenants)
                    .map(|ti| {
                        let mut t =
                            self.tenant(format!("crowd-{ni}-{ti}"), &profile, cores[ti], llc[ti]);
                        if ti == 0 {
                            // The crowd tenant: steady → spike → recovery.
                            let spike = self.rng.random_range(3.0..6.0);
                            let base = self.rate();
                            t.traffic = TrafficSpec::Replay {
                                trace: self.segmented_trace(
                                    "flash",
                                    horizon,
                                    base,
                                    &[(0.4, 1.0), (0.2, spike), (0.4, 1.0)],
                                ),
                                jitter_frac: self.rng.random_range(0.0..0.1),
                            };
                        }
                        t
                    })
                    .collect();
                NodeSpec { profile, tenants }
            })
            .collect();
        self.skeleton(epochs, epoch_s, nodes)
    }

    /// One node's replay collapses mid-horizon (failure/drain); every
    /// surviving node absorbs a failover surge over the same window.
    fn node_failure(&mut self) -> Scenario {
        let epochs = self.rng.random_range(3..=4u32);
        let epoch_s = 30.0;
        let horizon = f64::from(epochs) * epoch_s;
        let n_nodes = self.rng.random_range(2..=4usize);
        let victim = self.rng.random_range(0..n_nodes);
        let surge = self.rng.random_range(1.3..1.8);
        let nodes = (0..n_nodes)
            .map(|ni| {
                let profile = NodeProfile::paper_default();
                let base = self.rate();
                let segments: &[(f64, f64)] = if ni == victim {
                    // Blackout: the rate collapses to a trickle mid-horizon.
                    &[(0.4, 1.0), (0.2, 1e-3), (0.4, 1.0)]
                } else {
                    &[(0.4, 1.0), (0.2, surge), (0.4, 1.0)]
                };
                let trace = self.segmented_trace(
                    if ni == victim { "blackout" } else { "failover" },
                    horizon,
                    base,
                    segments,
                );
                let cores = self.core_split(1)[0];
                let llc = self.llc_split(1)[0];
                let mut tenant = self.tenant(format!("svc-{ni}"), &profile, cores, llc);
                tenant.traffic = TrafficSpec::Replay {
                    trace,
                    jitter_frac: self.rng.random_range(0.0..0.05),
                };
                NodeSpec {
                    profile,
                    tenants: vec![tenant],
                }
            })
            .collect();
        self.skeleton(epochs, epoch_s, nodes)
    }

    /// Edge nodes pinned at minimum frequency while the load ramps to a
    /// mid-horizon peak — the thermal-capping / power-limit regime.
    fn dvfs_throttle(&mut self) -> Scenario {
        let epochs = self.rng.random_range(3..=4u32);
        let epoch_s = 30.0;
        let horizon = f64::from(epochs) * epoch_s;
        let n_nodes = self.rng.random_range(1..=3usize);
        let ramp = self.rng.random_range(2.0..4.0);
        let nodes = (0..n_nodes)
            .map(|ni| {
                let profile = NodeProfile::edge_low_power();
                let cores = self.core_split(1)[0];
                let llc = self.llc_split(1)[0];
                let mut tenant = self.tenant(format!("edge-{ni}"), &profile, cores, llc);
                // The throttle: the node cannot leave the bottom rung even
                // as the offered load climbs.
                tenant.knobs.freq_ghz = profile.freq_min_ghz;
                let base = self.rate();
                tenant.traffic = TrafficSpec::Replay {
                    trace: self.segmented_trace(
                        "throttle-ramp",
                        horizon,
                        base,
                        &[(0.3, 0.5), (0.4, ramp), (0.3, 0.8)],
                    ),
                    jitter_frac: 0.0,
                };
                NodeSpec {
                    profile,
                    tenants: vec![tenant],
                }
            })
            .collect();
        self.skeleton(epochs, epoch_s, nodes)
    }

    /// Many bursty on/off tenants on few nodes under tight partitioning.
    fn tenant_storm(&mut self) -> Scenario {
        let epochs = self.rng.random_range(3..=5u32);
        let n_nodes = self.rng.random_range(1..=2usize);
        let nodes = (0..n_nodes)
            .map(|ni| {
                let profile = NodeProfile::paper_default();
                let n_tenants = self.rng.random_range(3..=5usize);
                let cores = self.core_split(n_tenants);
                let llc = self.llc_split(n_tenants);
                let tenants = (0..n_tenants)
                    .map(|ti| {
                        let mut t =
                            self.tenant(format!("storm-{ni}-{ti}"), &profile, cores[ti], llc[ti]);
                        t.sla = TenantSla::new(Sla::EnergyEfficiency)
                            .with_loss_cap(self.rng.random_range(0.05..0.2));
                        t.traffic = TrafficSpec::Flows(
                            FlowSet::new(vec![FlowSpec {
                                id: 0,
                                rate_pps: self.rng.random_range(5.0e5..2.5e6),
                                packet_size: self.packet_size(),
                                pattern: ArrivalPattern::MarkovOnOff {
                                    peak_factor: self.rng.random_range(2.0..4.0),
                                    on_fraction: self.rng.random_range(0.2..0.6),
                                },
                            }])
                            .expect("generated flows are valid"),
                        );
                        t
                    })
                    .collect();
                NodeSpec { profile, tenants }
            })
            .collect();
        self.skeleton(epochs, 30.0, nodes)
    }

    /// A fleet of plateau nodes with one jittered diurnal churn node — the
    /// low-churn regime incremental evaluation exists for.
    fn diurnal_fleet(&mut self) -> Scenario {
        let epochs = self.rng.random_range(2..=3u32);
        let n_nodes = self.rng.random_range(16..=64usize);
        let nodes = (0..n_nodes)
            .map(|ni| {
                let profile = NodeProfile::paper_default();
                let cores = self.core_split(1)[0];
                let llc = self.llc_split(1)[0];
                let mut tenant = self.tenant(format!("fleet-{ni}"), &profile, cores, llc);
                tenant.traffic = if ni == 0 {
                    TrafficSpec::Replay {
                        trace: Scenario::diurnal_trace_data(),
                        jitter_frac: self.rng.random_range(0.01..0.1),
                    }
                } else {
                    // Zero-jitter plateau: the sampled load never moves, so
                    // the lane stays clean from the second epoch on.
                    TrafficSpec::Replay {
                        trace: Trace::new(
                            "plateau",
                            vec![TracePoint {
                                duration_s: 3600.0,
                                rate_pps: self.rate(),
                                packet_size: self.packet_size(),
                                burstiness: self.burstiness(),
                            }],
                        )
                        .expect("generated plateau is valid"),
                        jitter_frac: 0.0,
                    }
                };
                NodeSpec {
                    profile,
                    tenants: vec![tenant],
                }
            })
            .collect();
        let mut sc = self.skeleton(epochs, 1800.0, nodes);
        // This shape exists to exercise the dirty-lane machinery; force it.
        sc.evaluation = EvalMode::Incremental;
        sc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_valid_and_buildable() {
        let a = corpus(7, 16);
        let b = corpus(7, 16);
        assert_eq!(a, b, "same master seed must reproduce the corpus");
        for sc in &a {
            sc.validate().unwrap_or_else(|e| panic!("{}: {e}", sc.name));
            sc.build_cluster()
                .unwrap_or_else(|e| panic!("{}: {e}", sc.name));
        }
        let c = corpus(8, 16);
        assert_ne!(a, c, "different master seeds must differ");
    }

    #[test]
    fn contiguous_seeds_cover_every_shape() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..10u64 {
            let sc = fuzz_scenario(seed);
            for shape in FuzzShape::ALL {
                if sc.name.contains(shape.name()) {
                    seen.insert(shape);
                }
            }
        }
        assert_eq!(seen.len(), FuzzShape::ALL.len(), "a shape never appeared");
    }

    #[test]
    fn shaped_generation_is_stamped_and_seeded() {
        for shape in FuzzShape::ALL {
            let sc = fuzz_scenario_shaped(shape, 0xBEEF);
            assert!(sc.name.contains(shape.name()), "{}", sc.name);
            assert_eq!(sc.seed, 0xBEEF);
            sc.validate().expect("shaped scenarios validate");
        }
    }

    #[test]
    fn generated_budgets_fit_every_node() {
        for sc in corpus(99, 24) {
            for node in &sc.nodes {
                let cores: u32 = node.tenants.iter().map(|t| t.knobs.cpu.cores).sum();
                assert!(cores <= NF_CORE_BUDGET, "{}: {cores} cores", sc.name);
                let llc: f64 = node.tenants.iter().map(|t| t.knobs.llc_fraction).sum();
                assert!(llc <= LLC_BUDGET + 1e-9, "{}: {llc} llc", sc.name);
                for t in &node.tenants {
                    let f = t.knobs.freq_ghz;
                    assert!(
                        f >= node.profile.freq_min_ghz - 1e-9
                            && f <= node.profile.freq_max_ghz + 1e-9,
                        "{}: freq {f} outside profile",
                        sc.name
                    );
                }
            }
        }
    }

    #[test]
    fn mid_horizon_events_land_mid_horizon() {
        // The blackout/spike segment must start after the first epoch and
        // end before the last one, so the event is visible *inside* a run.
        let sc = fuzz_scenario_shaped(FuzzShape::NodeFailure, 3);
        let horizon = f64::from(sc.epochs) * sc.tuning.epoch_s;
        let blackout = sc
            .nodes
            .iter()
            .flat_map(|n| &n.tenants)
            .find_map(|t| match &t.traffic {
                TrafficSpec::Replay { trace, .. } if trace.name() == "blackout" => Some(trace),
                _ => None,
            })
            .expect("node-failure scenarios contain a blackout trace");
        let points = blackout.points();
        let start: f64 = points[0].duration_s;
        let end = start + points[1].duration_s;
        assert!(start > 0.0 && end < horizon, "{start}..{end} vs {horizon}");
        assert!(points[1].rate_pps < 0.01 * points[0].rate_pps);
    }
}

//! Single-learner DDPG training of GreenNFV policies (paper §4.3).
//!
//! This is the sequential version of the paper's framework: one actor
//! interleaves environment interaction with learning steps on a prioritized
//! replay buffer. The distributed Ape-X variant (multiple actor workers, one
//! central learner) lives in [`crate::apex`].
//!
//! Training is **checkpointable**: a [`TrainSession`] steps one episode at a
//! time and can snapshot its *entire* state — environments (traffic RNG
//! streams and trace cursors included), agent networks with optimizer
//! moments, replay buffers, exploration noise, and loop counters — into a
//! serializable [`TrainCheckpoint`]. A run interrupted at any episode
//! boundary and resumed via [`resume_from`] is **bit-identical** to an
//! uninterrupted run (pinned by `tests/checkpoint_resume.rs`), so multi-day
//! trace replays survive restarts.

use greennfv_rl::env::{Environment, Transition};
use greennfv_rl::noise::{OrnsteinUhlenbeck, OuState};
use greennfv_rl::per::{PrioritizedReplay, PrioritizedReplayState};
use greennfv_rl::prelude::{DdpgAgent, DdpgConfig, DdpgState};
use greennfv_rl::replay::{ReplayBuffer, ReplayBufferState};
use greennfv_rl::schedule::Schedule;
use nfv_sim::prelude::{KnobSettings, SimError, SimResult};
use serde::{Deserialize, Serialize};

use greennfv_rl::prelude::DdpgParams;

use crate::action::ActionSpace;
use crate::controller::PolicyController;
use crate::envs::{EnvCheckpoint, EnvConfig, GreenNfvEnv, STATE_DIM};
use crate::sla::Sla;

/// Training hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Training episodes (each `steps_per_episode` control epochs).
    pub episodes: u32,
    /// Minibatch size for DDPG updates.
    pub batch_size: usize,
    /// Environment steps before learning starts.
    pub warmup_steps: usize,
    /// Greedy evaluation cadence, in episodes (paper: every 2000).
    pub eval_every: u32,
    /// Replay capacity.
    pub replay_capacity: usize,
    /// Exploration noise schedule (OU σ over episodes).
    pub noise_sigma: Schedule,
    /// Prioritized-replay β (importance correction) schedule over episodes.
    pub beta: Schedule,
    /// DDPG hyperparameters.
    pub ddpg: DdpgConfig,
    /// Gradient updates per environment step.
    pub updates_per_step: u32,
    /// Use prioritized experience replay (the paper's choice); `false` falls
    /// back to uniform replay — the ablation bench compares the two.
    pub use_per: bool,
    /// Candidate knob sets swept (as one batched what-if call) after
    /// training to probe how close the learned policy sits to a blind grid;
    /// `0` disables the sweep.
    pub final_sweep_candidates: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            episodes: 1500,
            batch_size: 64,
            warmup_steps: 256,
            eval_every: 100,
            replay_capacity: 100_000,
            noise_sigma: Schedule::Exponential {
                from: 0.35,
                rate: 0.998,
                min: 0.03,
            },
            beta: Schedule::Linear {
                from: 0.4,
                to: 1.0,
                steps: 1500,
            },
            ddpg: DdpgConfig::default(),
            updates_per_step: 1,
            use_per: true,
            final_sweep_candidates: 16,
            seed: 42,
        }
    }
}

impl TrainConfig {
    /// Fast configuration for tests and quick benches.
    pub fn quick(episodes: u32, seed: u64) -> Self {
        Self {
            episodes,
            warmup_steps: (episodes as usize * 4).min(256),
            eval_every: (episodes / 10).max(1),
            beta: Schedule::Linear {
                from: 0.4,
                to: 1.0,
                steps: u64::from(episodes),
            },
            seed,
            ..Self::default()
        }
    }
}

/// One point on the training curves of Figures 6–8: the periodic greedy
/// evaluation plus the knob settings the policy chose.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalPoint {
    /// Episode index at which the evaluation ran.
    pub episode: u32,
    /// Mean throughput over the eval episode (Gbps).
    pub throughput_gbps: f64,
    /// Mean epoch energy over the eval episode (J).
    pub energy_j: f64,
    /// Energy efficiency (Gbps/kJ).
    pub efficiency: f64,
    /// Mean CPU usage in percent of one core (up to 400% = 4 cores).
    pub cpu_usage_pct: f64,
    /// Mean selected core frequency (GHz).
    pub freq_ghz: f64,
    /// Mean selected LLC allocation (percent).
    pub llc_pct: f64,
    /// Mean selected DMA buffer (MB).
    pub dma_mb: f64,
    /// Mean selected batch size (packets).
    pub batch: f64,
    /// Mean training reward since the previous evaluation.
    pub mean_reward: f64,
}

/// Scores an evaluation point for checkpoint selection: constraint
/// satisfaction dominates, then the SLA's objective.
pub fn eval_score(sla: Sla, point: &EvalPoint) -> f64 {
    match sla {
        Sla::MaxThroughput { energy_cap_j } => {
            if point.energy_j <= energy_cap_j {
                point.throughput_gbps
            } else {
                -(point.energy_j - energy_cap_j) / energy_cap_j
            }
        }
        Sla::MinEnergy {
            throughput_floor_gbps,
        } => {
            if point.throughput_gbps >= throughput_floor_gbps {
                // Lower energy is better; keep scores positive-ish.
                10_000.0 / point.energy_j.max(1.0)
            } else {
                point.throughput_gbps - throughput_floor_gbps
            }
        }
        Sla::EnergyEfficiency => point.efficiency,
    }
}

/// Output of a training run.
#[derive(Debug)]
pub struct TrainOutcome {
    /// The trained agent (actor + critic).
    pub agent: DdpgAgent,
    /// Parameter snapshot of the best-scoring periodic evaluation (DDPG can
    /// drift late in training; deployment uses this checkpoint).
    pub best_params: DdpgParams,
    /// Evaluation score of the best checkpoint.
    pub best_score: f64,
    /// Action decoding used during training.
    pub action_space: ActionSpace,
    /// Evaluation trace (the paper's training-progress figures).
    pub history: Vec<EvalPoint>,
    /// Total energy consumed by the NFV node during training (`E_t` in
    /// Eq. 9).
    pub training_energy_j: f64,
    /// Best (knobs, reward) found by the post-training candidate sweep —
    /// a blind lattice over the knob space submitted as one batched what-if
    /// call — or `None` when `TrainConfig::final_sweep_candidates` is 0.
    /// Diagnostic only: a policy scoring far below this grid underfits.
    pub best_sweep: Option<(KnobSettings, f64)>,
    /// SLA the policy was trained for.
    pub sla: Sla,
}

impl TrainOutcome {
    /// Wraps the best-checkpoint actor as a deployable controller.
    pub fn into_controller(self, name: &'static str) -> PolicyController {
        let actor = greennfv_nn::mlp::Mlp::from_json(&self.best_params.actor)
            .expect("actor exported by export_params parses");
        PolicyController::new(name, actor, self.action_space)
    }

    /// Wraps the final (last-episode) actor, ignoring checkpoint selection.
    pub fn into_final_controller(self, name: &'static str) -> PolicyController {
        let params = self.agent.export_params();
        let actor = greennfv_nn::mlp::Mlp::from_json(&params.actor)
            .expect("actor exported by export_params parses");
        PolicyController::new(name, actor, self.action_space)
    }

    /// Last evaluation point, if any.
    pub fn final_eval(&self) -> Option<&EvalPoint> {
        self.history.last()
    }
}

/// Trains a GreenNFV policy for `sla` on the paper's evaluation workload.
pub fn train(sla: Sla, cfg: &TrainConfig) -> TrainOutcome {
    train_with_env_config(EnvConfig::paper(sla, cfg.seed), cfg)
}

/// Trains on an explicit environment configuration.
pub fn train_with_env_config(env_cfg: EnvConfig, cfg: &TrainConfig) -> TrainOutcome {
    let mut session = TrainSession::new(env_cfg, cfg.clone());
    while !session.is_done() {
        session.run_episode();
    }
    session.finish()
}

/// Like [`train_with_env_config`], but snapshots a [`TrainCheckpoint`] into
/// `sink` every `checkpoint_every` episodes (and once more at the final
/// episode). Persist the snapshot wherever you like — it is plain serde
/// data — and hand it to [`resume_from`] after an interruption; the resumed
/// run is bit-identical to the uninterrupted one.
pub fn train_resumable(
    env_cfg: EnvConfig,
    cfg: &TrainConfig,
    checkpoint_every: u32,
    mut sink: impl FnMut(TrainCheckpoint),
) -> TrainOutcome {
    let every = checkpoint_every.max(1);
    let mut session = TrainSession::new(env_cfg, cfg.clone());
    while !session.is_done() {
        session.run_episode();
        if session.next_episode.is_multiple_of(every) || session.is_done() {
            sink(session.checkpoint());
        }
    }
    session.finish()
}

/// Resumes an interrupted training run from a [`TrainCheckpoint`] and runs
/// it to completion. The outcome is bit-identical to the run the checkpoint
/// was taken from, had it never been interrupted
/// (`tests/checkpoint_resume.rs` pins this).
pub fn resume_from(checkpoint: TrainCheckpoint) -> SimResult<TrainOutcome> {
    let mut session = TrainSession::from_checkpoint(checkpoint)?;
    while !session.is_done() {
        session.run_episode();
    }
    Ok(session.finish())
}

/// [`resume_from`] that keeps checkpointing while it runs — the symmetric
/// twin of [`train_resumable`], so a run that crosses *multiple* restarts
/// never loses more than `checkpoint_every` episodes of progress.
pub fn resume_resumable(
    checkpoint: TrainCheckpoint,
    checkpoint_every: u32,
    mut sink: impl FnMut(TrainCheckpoint),
) -> SimResult<TrainOutcome> {
    let every = checkpoint_every.max(1);
    let mut session = TrainSession::from_checkpoint(checkpoint)?;
    while !session.is_done() {
        session.run_episode();
        if session.next_episode.is_multiple_of(every) || session.is_done() {
            sink(session.checkpoint());
        }
    }
    Ok(session.finish())
}

/// Everything a training checkpoint must carry to make resumption
/// bit-exact: the full config, both environments (with traffic RNG streams
/// and trace cursors), the agent's networks *and* optimizer moments, both
/// replay buffers (contents, priorities, sampler RNGs), the exploration
/// noise stream, and the loop bookkeeping.
///
/// Serialize with [`TrainCheckpoint::to_json`] (the vendored `serde_json`
/// round-trips every `f64` exactly, non-finite values included) or any
/// serde format.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainCheckpoint {
    /// Training hyperparameters (the resumed loop continues them).
    pub cfg: TrainConfig,
    /// Exploration environment.
    pub env: EnvCheckpoint,
    /// Greedy-evaluation environment.
    pub eval_env: EnvCheckpoint,
    /// Agent networks, targets, and optimizer moments.
    pub agent: DdpgState,
    /// Exploration-noise process state.
    pub noise: OuState,
    /// Prioritized replay buffer state.
    pub replay: PrioritizedReplayState,
    /// Uniform replay buffer state (the `use_per = false` ablation).
    pub uniform: ReplayBufferState,
    /// Evaluation history so far.
    pub history: Vec<EvalPoint>,
    /// Reward accumulator since the last evaluation.
    pub reward_acc: f64,
    /// Rewards accumulated since the last evaluation.
    pub reward_n: u32,
    /// Best checkpoint parameters so far.
    pub best_params: DdpgParams,
    /// Best evaluation score so far (`-inf` before the first evaluation).
    pub best_score: f64,
    /// The episode the resumed loop will run next.
    pub next_episode: u32,
}

impl TrainCheckpoint {
    /// Serializes the checkpoint to JSON (exact float round-trip).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoint serialization is infallible")
    }

    /// Rebuilds a checkpoint from [`TrainCheckpoint::to_json`] output.
    pub fn from_json(text: &str) -> SimResult<Self> {
        serde_json::from_str(text)
            .map_err(|e| SimError::NodeConfig(format!("train checkpoint JSON: {e}")))
    }
}

/// An in-flight sequential training run, steppable one episode at a time.
///
/// [`train_with_env_config`] is a thin loop over this; use it directly when
/// you need checkpoints ([`TrainSession::checkpoint`]) or custom pacing.
pub struct TrainSession {
    cfg: TrainConfig,
    env: GreenNfvEnv,
    eval_env: GreenNfvEnv,
    agent: DdpgAgent,
    noise: OrnsteinUhlenbeck,
    replay: PrioritizedReplay,
    uniform: ReplayBuffer,
    history: Vec<EvalPoint>,
    reward_acc: f64,
    reward_n: u32,
    best_params: DdpgParams,
    best_score: f64,
    next_episode: u32,
}

impl TrainSession {
    /// Builds a fresh session (episode 0 not yet run).
    pub fn new(env_cfg: EnvConfig, cfg: TrainConfig) -> Self {
        let env = GreenNfvEnv::new(env_cfg.clone());
        // A separate environment for periodic greedy evaluation, so
        // exploration noise never pollutes the reported curves.
        let eval_env = GreenNfvEnv::new(EnvConfig {
            seed: env_cfg.seed.wrapping_add(500),
            ..env_cfg
        });
        let agent = DdpgAgent::new(STATE_DIM, 5, cfg.ddpg, cfg.seed);
        let noise = OrnsteinUhlenbeck::standard(5, cfg.seed.wrapping_add(1));
        let replay = PrioritizedReplay::new(cfg.replay_capacity, cfg.seed.wrapping_add(2));
        let uniform = ReplayBuffer::new(cfg.replay_capacity, cfg.seed.wrapping_add(3));
        let best_params = agent.export_params();
        Self {
            cfg,
            env,
            eval_env,
            agent,
            noise,
            replay,
            uniform,
            history: Vec::new(),
            reward_acc: 0.0,
            reward_n: 0,
            best_params,
            best_score: f64::NEG_INFINITY,
            next_episode: 0,
        }
    }

    /// True once every configured episode has run.
    pub fn is_done(&self) -> bool {
        self.next_episode >= self.cfg.episodes
    }

    /// The episode index [`TrainSession::run_episode`] will run next.
    pub fn next_episode(&self) -> u32 {
        self.next_episode
    }

    /// Runs one training episode (environment interaction + learning steps
    /// + the periodic greedy evaluation when due). No-op once done.
    pub fn run_episode(&mut self) {
        if self.is_done() {
            return;
        }
        let ep = self.next_episode;
        let cfg = &self.cfg;
        self.noise.set_sigma(cfg.noise_sigma.at(u64::from(ep)));
        self.noise.reset();
        let beta = cfg.beta.at(u64::from(ep));
        let mut state = self.env.reset();
        loop {
            let mut action = self.agent.act(&state);
            for (a, n) in action.iter_mut().zip(self.noise.sample()) {
                *a = (*a + n).clamp(-1.0, 1.0);
            }
            let step = self.env.step(&action);
            self.reward_acc += step.reward;
            self.reward_n += 1;
            let tr = Transition {
                state: state.clone(),
                action,
                reward: step.reward,
                next_state: step.next_state.clone(),
                done: step.done,
            };
            if cfg.use_per {
                let td = self.agent.td_error(&tr);
                self.replay.push_with_priority(tr, td);
            } else {
                self.uniform.push(tr);
            }
            state = step.next_state;

            let stored = if cfg.use_per {
                self.replay.len()
            } else {
                self.uniform.len()
            };
            if stored >= cfg.warmup_steps {
                for _ in 0..cfg.updates_per_step {
                    if cfg.use_per {
                        let batch = self.replay.sample(cfg.batch_size, beta);
                        let (_, tds) = self.agent.update(&batch.transitions, &batch.weights);
                        self.replay.update_priorities(&batch.indices, &tds);
                    } else {
                        let batch = self.uniform.sample(cfg.batch_size);
                        let w = vec![1.0; batch.len()];
                        self.agent.update(&batch, &w);
                    }
                }
            }
            if step.done {
                break;
            }
        }

        if (ep + 1).is_multiple_of(cfg.eval_every) || ep + 1 == cfg.episodes {
            let point = evaluate_greedy(
                &self.agent,
                &mut self.eval_env,
                ep + 1,
                self.reward_acc,
                self.reward_n,
            );
            let score = eval_score(self.env.config().sla, &point);
            if score > self.best_score {
                self.best_score = score;
                self.best_params = self.agent.export_params();
            }
            self.history.push(point);
            self.reward_acc = 0.0;
            self.reward_n = 0;
        }
        self.next_episode = ep + 1;
    }

    /// Snapshot of the whole session at the current episode boundary.
    pub fn checkpoint(&self) -> TrainCheckpoint {
        TrainCheckpoint {
            cfg: self.cfg.clone(),
            env: self.env.checkpoint(),
            eval_env: self.eval_env.checkpoint(),
            agent: self.agent.export_state(),
            noise: self.noise.export_state(),
            replay: self.replay.export_state(),
            uniform: self.uniform.export_state(),
            history: self.history.clone(),
            reward_acc: self.reward_acc,
            reward_n: self.reward_n,
            best_params: self.best_params.clone(),
            best_score: self.best_score,
            next_episode: self.next_episode,
        }
    }

    /// Rebuilds a session from a [`TrainSession::checkpoint`] snapshot.
    pub fn from_checkpoint(ck: TrainCheckpoint) -> SimResult<Self> {
        Ok(Self {
            cfg: ck.cfg,
            env: GreenNfvEnv::from_checkpoint(ck.env)?,
            eval_env: GreenNfvEnv::from_checkpoint(ck.eval_env)?,
            agent: DdpgAgent::from_state(ck.agent),
            noise: OrnsteinUhlenbeck::from_state(ck.noise),
            replay: PrioritizedReplay::from_state(ck.replay),
            uniform: ReplayBuffer::from_state(ck.uniform),
            history: ck.history,
            reward_acc: ck.reward_acc,
            reward_n: ck.reward_n,
            best_params: ck.best_params,
            best_score: ck.best_score,
            next_episode: ck.next_episode,
        })
    }

    /// Finishes the run: the post-training candidate-lattice probe plus the
    /// assembled [`TrainOutcome`].
    pub fn finish(mut self) -> TrainOutcome {
        // Post-training refinement probe: submit a blind candidate lattice
        // as one batched what-if sweep (no extra environment epochs or
        // energy). Multi-tenant environments skip it: the what-if sweep
        // needs a single-chain node (`Node::evaluate_candidates`), and a
        // candidate's node-level outcome next to co-tenants would need
        // fresh loads for every other chain.
        let best_sweep = if self.cfg.final_sweep_candidates > 0 && !self.eval_env.is_multi_tenant()
        {
            let candidates = candidate_lattice(&self.eval_env, self.cfg.final_sweep_candidates);
            self.eval_env
                .sweep_candidates(&candidates)
                .into_iter()
                .zip(candidates)
                .filter_map(|(r, k)| r.ok().map(|o| (k, o.reward)))
                .max_by(|a, b| a.1.total_cmp(&b.1))
        } else {
            None
        };

        TrainOutcome {
            best_params: self.best_params,
            best_score: self.best_score,
            action_space: self.env.config().action_space,
            history: self.history,
            training_energy_j: self.env.cumulative_energy_j() + self.eval_env.cumulative_energy_j(),
            best_sweep,
            sla: self.env.config().sla,
            agent: self.agent,
        }
    }
}

/// A deterministic low-discrepancy lattice of `n` candidate knob sets over
/// the normalized action cube, decoded through the environment's action
/// space (so every candidate is range-valid by construction).
fn candidate_lattice(env: &GreenNfvEnv, n: usize) -> Vec<KnobSettings> {
    let space = env.config().action_space;
    (0..n)
        .map(|i| {
            let action: Vec<f64> = (0..5)
                .map(|dim| {
                    // Weyl-style hash: dense in [-1, 1], seed-free, stable.
                    let k = (i * 5 + dim) as u64 + 1;
                    let h = k.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11;
                    -1.0 + 2.0 * (h as f64 / (1u64 << 53) as f64)
                })
                .collect();
            space.decode(&action)
        })
        .collect()
}

/// Runs one greedy episode and summarizes outcomes + chosen knobs.
fn evaluate_greedy(
    agent: &DdpgAgent,
    env: &mut GreenNfvEnv,
    episode: u32,
    reward_acc: f64,
    reward_n: u32,
) -> EvalPoint {
    let mut state = env.reset();
    let mut t_sum = 0.0;
    let mut e_sum = 0.0;
    let mut cpu = 0.0;
    let mut freq = 0.0;
    let mut llc = 0.0;
    let mut dma = 0.0;
    let mut batch = 0.0;
    let mut n = 0u32;
    loop {
        let action = agent.act(&state);
        let step = env.step(&action);
        let report = env.last_report().expect("step produced a report");
        let tel = report.telemetry[0];
        let knobs = env.knobs();
        t_sum += tel.throughput_gbps;
        e_sum += report.node.energy_j;
        cpu += knobs.cpu.effective_cores() * 100.0;
        freq += knobs.freq_ghz;
        llc += knobs.llc_fraction * 100.0;
        dma += knobs.dma.mb();
        batch += f64::from(knobs.batch);
        n += 1;
        state = step.next_state;
        if step.done {
            break;
        }
    }
    let nf = f64::from(n.max(1));
    let mean_t = t_sum / nf;
    let mean_e = e_sum / nf;
    EvalPoint {
        episode,
        throughput_gbps: mean_t,
        energy_j: mean_e,
        efficiency: if mean_e > 0.0 {
            mean_t / (mean_e / 1000.0)
        } else {
            0.0
        },
        cpu_usage_pct: cpu / nf,
        freq_ghz: freq / nf,
        llc_pct: llc / nf,
        dma_mb: dma / nf,
        batch: batch / nf,
        mean_reward: if reward_n > 0 {
            reward_acc / f64::from(reward_n)
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::BaselineController;
    use crate::controller::{run_controller, RunConfig};

    #[test]
    fn training_produces_history_and_energy() {
        let cfg = TrainConfig::quick(20, 3);
        let out = train(Sla::EnergyEfficiency, &cfg);
        assert_eq!(out.history.len(), 10, "eval every 2 episodes over 20");
        assert!(out.training_energy_j > 0.0);
        assert!(out.agent.updates() > 0);
        let last = out.final_eval().unwrap();
        assert!(last.throughput_gbps >= 0.0);
        assert!(last.freq_ghz >= 1.2 && last.freq_ghz <= 2.1);
        // The post-training candidate sweep ran and produced a valid point.
        let (knobs, reward) = out.best_sweep.expect("default config sweeps 16 candidates");
        assert!(knobs.validate().is_ok());
        assert!(reward.is_finite());
    }

    #[test]
    fn final_sweep_can_be_disabled() {
        let mut cfg = TrainConfig::quick(4, 3);
        cfg.final_sweep_candidates = 0;
        let out = train(Sla::EnergyEfficiency, &cfg);
        assert!(out.best_sweep.is_none());
    }

    #[test]
    fn trained_policy_beats_baseline_on_efficiency() {
        // Short but real training run: the policy must clearly beat the
        // untuned baseline on the EE objective.
        let cfg = TrainConfig::quick(120, 7);
        let out = train(Sla::EnergyEfficiency, &cfg);
        let mut policy = out.into_controller("GreenNFV(EE)");
        let run_cfg = RunConfig::paper(20, 99);
        let green = run_controller(&mut policy, &run_cfg);
        let base = run_controller(&mut BaselineController, &run_cfg);
        assert!(
            green.efficiency > 1.5 * base.efficiency,
            "green {} vs baseline {}",
            green.efficiency,
            base.efficiency
        );
    }

    #[test]
    fn multi_tenant_training_skips_the_sweep_and_still_learns() {
        // Training next to a fixed background tenant must run end-to-end;
        // the post-training lattice sweep is skipped (single-chain only).
        use crate::scenario::{TenantSpec, TrafficSpec};
        use crate::sla::TenantSla;
        use nfv_sim::prelude::*;

        let mut env_cfg = EnvConfig::paper(Sla::EnergyEfficiency, 13);
        let mut knobs = KnobSettings::default_tuned();
        knobs.llc_fraction = 0.2;
        env_cfg.background = vec![TenantSpec {
            name: "colo".into(),
            nfs: ChainSpec::lightweight(ChainId(0)).nfs,
            sla: TenantSla::new(Sla::EnergyEfficiency).with_loss_cap(0.1),
            knobs,
            traffic: TrafficSpec::Flows(
                FlowSet::new(vec![FlowSpec::poisson(0, 5.0e5, 256)]).unwrap(),
            ),
        }];
        let cfg = TrainConfig::quick(8, 13);
        let out = train_with_env_config(env_cfg, &cfg);
        assert!(out.best_sweep.is_none(), "sweep must be skipped");
        assert!(out.agent.updates() > 0);
        assert!(out.training_energy_j > 0.0);
    }

    #[test]
    fn eval_points_are_ordered_by_episode() {
        let cfg = TrainConfig::quick(30, 5);
        let out = train(Sla::paper_max_throughput(), &cfg);
        assert!(out.history.windows(2).all(|w| w[0].episode < w[1].episode));
    }
}

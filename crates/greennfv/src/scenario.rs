//! Dynamic workload scenarios.
//!
//! The paper motivates learning-based control with the observation that
//! "network flows can be highly dynamic" and a controller must "adapt its
//! decisions based on changing environmental conditions". This module
//! provides workload schedules — diurnal load swings, flash crowds, packet
//! size shifts — and a runner that drives any [`Controller`] through them,
//! changing the offered flows between phases.

use nfv_sim::prelude::*;
use serde::{Deserialize, Serialize};

use crate::controller::{Controller, EpochTrace};

/// One phase of a dynamic scenario.
#[derive(Debug, Clone)]
pub struct WorkloadPhase {
    /// Label for reports.
    pub label: &'static str,
    /// Flows offered during this phase.
    pub flows: FlowSet,
    /// Number of control epochs the phase lasts.
    pub epochs: u32,
}

/// A named schedule of workload phases.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name.
    pub name: &'static str,
    /// Phases in order.
    pub phases: Vec<WorkloadPhase>,
}

impl Scenario {
    /// Diurnal pattern: night trickle → morning ramp → peak → evening decay.
    pub fn diurnal() -> Self {
        let mk = |pps: f64| FlowSet::new(vec![FlowSpec::poisson(0, pps, 512)]).expect("valid");
        Scenario {
            name: "diurnal",
            phases: vec![
                WorkloadPhase { label: "night", flows: mk(2.0e5), epochs: 6 },
                WorkloadPhase { label: "morning", flows: mk(1.2e6), epochs: 6 },
                WorkloadPhase { label: "peak", flows: mk(2.4e6), epochs: 6 },
                WorkloadPhase { label: "evening", flows: mk(8.0e5), epochs: 6 },
            ],
        }
    }

    /// Flash crowd: steady load with a sudden 4× bursty spike, then recovery.
    pub fn flash_crowd() -> Self {
        let steady = FlowSet::new(vec![FlowSpec::cbr(0, 6.0e5, 512)]).expect("valid");
        let spike = FlowSet::new(vec![FlowSpec {
            id: 0,
            rate_pps: 2.4e6,
            packet_size: 512,
            pattern: ArrivalPattern::MarkovOnOff {
                peak_factor: 2.0,
                on_fraction: 0.5,
            },
        }])
        .expect("valid");
        Scenario {
            name: "flash-crowd",
            phases: vec![
                WorkloadPhase { label: "steady", flows: steady.clone(), epochs: 8 },
                WorkloadPhase { label: "spike", flows: spike, epochs: 6 },
                WorkloadPhase { label: "recovery", flows: steady, epochs: 8 },
            ],
        }
    }

    /// Packet-size shift: the same bit rate delivered first in large then in
    /// tiny packets (a 10× pps increase at constant Gbps).
    pub fn packet_size_shift() -> Self {
        Scenario {
            name: "packet-size-shift",
            phases: vec![
                WorkloadPhase {
                    label: "large-packets",
                    flows: FlowSet::new(vec![FlowSpec::cbr(0, 4.0e5, 1280)]).expect("valid"),
                    epochs: 8,
                },
                WorkloadPhase {
                    label: "small-packets",
                    flows: FlowSet::new(vec![FlowSpec::cbr(0, 4.0e6, 128)]).expect("valid"),
                    epochs: 8,
                },
            ],
        }
    }

    /// Total epochs across all phases.
    pub fn total_epochs(&self) -> u32 {
        self.phases.iter().map(|p| p.epochs).sum()
    }
}

/// Per-phase summary of a dynamic run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseSummary {
    /// Phase label.
    pub label: String,
    /// Mean delivered throughput (Gbps).
    pub mean_throughput_gbps: f64,
    /// Mean offered load (Gbps) during the phase.
    pub offered_gbps: f64,
    /// Mean epoch energy (J).
    pub mean_energy_j: f64,
    /// Mean efficiency (Gbps/kJ).
    pub efficiency: f64,
}

/// Result of driving a controller through a scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// Controller name.
    pub controller: String,
    /// Per-phase summaries, in order.
    pub phases: Vec<PhaseSummary>,
    /// Full epoch trace.
    pub trace: Vec<EpochTrace>,
}

impl ScenarioResult {
    /// Mean energy across the whole scenario.
    pub fn mean_energy_j(&self) -> f64 {
        if self.trace.is_empty() {
            return 0.0;
        }
        self.trace.iter().map(|t| t.energy_j).sum::<f64>() / self.trace.len() as f64
    }

    /// Phase summary by label.
    pub fn phase(&self, label: &str) -> Option<&PhaseSummary> {
        self.phases.iter().find(|p| p.label == label)
    }
}

/// Drives `ctrl` through `scenario`, swapping the offered flows at each
/// phase boundary (the controller keeps its state — that's the adaptation
/// being tested).
pub fn run_scenario(
    ctrl: &mut dyn Controller,
    scenario: &Scenario,
    tuning: SimTuning,
    power: PowerModel,
    seed: u64,
) -> ScenarioResult {
    let first = &scenario.phases[0];
    let mut node = Node::new(0, tuning, power, ctrl.platform());
    let mut knobs = ctrl.initial_knobs(&first.flows);
    node.add_chain(
        ChainSpec::canonical_three(ChainId(0)),
        first.flows.clone(),
        knobs,
        seed,
    )
    .expect("initial knobs fit");
    let mut trace = Vec::with_capacity(scenario.total_epochs() as usize);
    let mut phases = Vec::with_capacity(scenario.phases.len());
    for (pi, phase) in scenario.phases.iter().enumerate() {
        if pi > 0 {
            node.set_flows(ChainId(0), phase.flows.clone(), seed.wrapping_add(pi as u64))
                .expect("chain exists");
        }
        let start = trace.len();
        for _ in 0..phase.epochs {
            let report = node.run_epoch();
            let t = report.telemetry[0];
            trace.push(EpochTrace {
                throughput_gbps: t.throughput_gbps,
                energy_j: report.node.energy_j,
                cpu_util: t.cpu_util,
                knobs,
            });
            let next = ctrl.decide(&t, &knobs);
            if node.set_knobs(ChainId(0), next).is_ok() {
                knobs = next;
            }
        }
        let slice = &trace[start..];
        let n = slice.len().max(1) as f64;
        let mean_t = slice.iter().map(|e| e.throughput_gbps).sum::<f64>() / n;
        let mean_e = slice.iter().map(|e| e.energy_j).sum::<f64>() / n;
        phases.push(PhaseSummary {
            label: phase.label.to_string(),
            mean_throughput_gbps: mean_t,
            offered_gbps: phase.flows.total_offered_gbps(),
            mean_energy_j: mean_e,
            efficiency: if mean_e > 0.0 { mean_t / (mean_e / 1000.0) } else { 0.0 },
        });
    }
    ScenarioResult {
        controller: ctrl.name().to_string(),
        phases,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::BaselineController;
    use crate::eepstate::EePstateController;

    #[test]
    fn scenarios_have_sane_schedules() {
        for s in [
            Scenario::diurnal(),
            Scenario::flash_crowd(),
            Scenario::packet_size_shift(),
        ] {
            assert!(!s.phases.is_empty());
            assert!(s.total_epochs() >= 10);
            for p in &s.phases {
                assert!(p.flows.total_rate_pps() > 0.0, "{}", p.label);
            }
        }
    }

    #[test]
    fn run_produces_per_phase_summaries() {
        let s = Scenario::diurnal();
        let r = run_scenario(
            &mut BaselineController,
            &s,
            SimTuning::default(),
            PowerModel::default(),
            3,
        );
        assert_eq!(r.phases.len(), 4);
        assert_eq!(r.trace.len() as u32, s.total_epochs());
        assert!(r.phase("peak").is_some());
        assert!(r.phase("nonexistent").is_none());
    }

    #[test]
    fn peak_phase_carries_more_traffic_than_night() {
        let s = Scenario::diurnal();
        let r = run_scenario(
            &mut EePstateController::default(),
            &s,
            SimTuning::default(),
            PowerModel::default(),
            5,
        );
        let night = r.phase("night").unwrap();
        let peak = r.phase("peak").unwrap();
        assert!(peak.mean_throughput_gbps > night.mean_throughput_gbps);
    }

    #[test]
    fn adaptive_pstate_saves_energy_at_night_vs_baseline() {
        // The DES-driven EE-Pstate drops frequency when the load falls;
        // the baseline burns max frequency around the clock.
        let s = Scenario::diurnal();
        let base = run_scenario(
            &mut BaselineController,
            &s,
            SimTuning::default(),
            PowerModel::default(),
            7,
        );
        let ee = run_scenario(
            &mut EePstateController::default(),
            &s,
            SimTuning::default(),
            PowerModel::default(),
            7,
        );
        let b_night = base.phase("night").unwrap().mean_energy_j;
        let e_night = ee.phase("night").unwrap().mean_energy_j;
        assert!(
            e_night < 0.9 * b_night,
            "EE-Pstate at night {e_night} vs baseline {b_night}"
        );
    }

    #[test]
    fn flash_crowd_spike_is_visible_in_trace() {
        let s = Scenario::flash_crowd();
        let r = run_scenario(
            &mut EePstateController::default(),
            &s,
            SimTuning::default(),
            PowerModel::default(),
            9,
        );
        let steady = r.phase("steady").unwrap().mean_throughput_gbps;
        // The spike is ON/OFF: whole epochs can be silent, so compare the
        // busiest spike epoch (trace[8..14] = the spike phase) to steady.
        let spike_peak = r.trace[8..14]
            .iter()
            .map(|e| e.throughput_gbps)
            .fold(0.0f64, f64::max);
        assert!(
            spike_peak > 1.2 * steady,
            "spike peak {spike_peak} vs steady {steady}"
        );
    }
}

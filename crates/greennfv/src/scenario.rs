//! The scenario subsystem: serializable workload descriptors plus the legacy
//! phase-based workload schedules.
//!
//! A [`Scenario`] is a first-class, serde-serializable description of a whole
//! experiment: a set of nodes, each with a hardware [`NodeProfile`]
//! (heterogeneous clusters), each hosting one or more [`TenantSpec`]s —
//! chains with their own [`TenantSla`], knobs, and traffic ([`TrafficSpec`]:
//! synthetic flows or trace replay). [`Scenario::build_cluster`] lowers the
//! descriptor into a [`Cluster`] and [`Scenario::run`] drives it through
//! lock-step epochs — every epoch evaluates all chains of all nodes as one
//! fused batch through the column-pass engine, exactly like any other
//! cluster workload.
//!
//! [`Scenario::registry`] names the canonical scenario set. Tests
//! (`tests/scenarios.rs`), benches (`perf_micro`'s `scenario_epoch` group),
//! and the CI scenario matrix all enumerate it, so adding a scenario in one
//! place propagates everywhere; `examples/scenario_sweep.rs` runs the whole
//! registry end-to-end.
//!
//! The second half of the module keeps the original dynamic-workload
//! machinery: a [`WorkloadSchedule`] is a list of phases that swap a single
//! chain's offered flows while a [`Controller`] adapts — the "changing
//! environmental conditions" experiment of the paper.

pub mod fuzz;

use nfv_sim::prelude::*;
use serde::{Deserialize, Serialize};

use crate::controller::{Controller, EpochTrace};
use crate::report::table;
use crate::sla::{tenant_reward_scaled, Sla, TenantSla};

/// The example diurnal trace checked in at `traces/diurnal.csv`: 24 hourly
/// segments following a day/night load curve.
const DIURNAL_CSV: &str = include_str!("../../../traces/diurnal.csv");

// ---------------------------------------------------------------------------
// Scenario descriptor
// ---------------------------------------------------------------------------

/// A tenant's offered traffic: synthetic flows or trace-driven replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrafficSpec {
    /// Seeded synthetic generation from a flow set.
    Flows(FlowSet),
    /// Deterministic replay of a recorded trace.
    Replay {
        /// The trace to replay (cyclically).
        trace: Trace,
        /// Relative std-dev of the seeded per-window rate jitter.
        jitter_frac: f64,
    },
}

impl TrafficSpec {
    /// Builds the runtime [`TrafficSource`] for this spec.
    pub fn build_source(&self, seed: u64) -> SimResult<TrafficSource> {
        match self {
            TrafficSpec::Flows(flows) => Ok(TrafficSource::synthetic(flows.clone(), seed)),
            TrafficSpec::Replay { trace, jitter_frac } => {
                TrafficSource::replay(trace.clone(), *jitter_frac, seed)
            }
        }
    }
}

/// One tenant: a service chain with its own agreement, knobs, and traffic,
/// sharing its node's cores and cache ways with co-resident tenants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Tenant name for reports.
    pub name: String,
    /// NF kinds of the tenant's chain, in processing order.
    pub nfs: Vec<NfKind>,
    /// The tenant's service agreement.
    pub sla: TenantSla,
    /// Knobs the tenant's chain runs under.
    pub knobs: KnobSettings,
    /// Offered traffic.
    pub traffic: TrafficSpec,
}

/// One node of a scenario: a hardware profile plus its resident tenants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Hardware profile (frequency range, LLC/DDIO ways, power curve).
    pub profile: NodeProfile,
    /// Tenants sharing this node.
    pub tenants: Vec<TenantSpec>,
}

/// A complete, serializable experiment descriptor.
///
/// Serialize with [`Scenario::to_json`] / rebuild with
/// [`Scenario::from_json`]; the serde round-trip is exact (the vendored
/// `serde_json` writes shortest-round-trip floats), so a deserialized
/// scenario reproduces the original epoch results bit-for-bit — pinned by a
/// proptest in `tests/proptests.rs`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario name (registry key).
    pub name: String,
    /// Control epochs [`Scenario::run`] executes.
    pub epochs: u32,
    /// Master seed; per-tenant traffic seeds derive from it.
    pub seed: u64,
    /// Cluster-wide model tuning (shared so node batches fuse).
    pub tuning: SimTuning,
    /// Platform policy on every node.
    pub policy: PlatformPolicy,
    /// How [`Scenario::run`] evaluates each epoch's fused batch: `full`
    /// sweeps every lane through the kernel every epoch; `incremental`
    /// re-runs only lanes whose sampled load or knobs changed, reusing the
    /// previous epoch's cached outputs for clean lane groups. Bit-identical
    /// either way — this is purely a cost knob for low-churn workloads.
    /// Descriptors written before this field existed parse as `full`.
    #[serde(default)]
    pub evaluation: EvalMode,
    /// Worker processes to partition the cluster across: `0` or `1` runs
    /// fused in-process; `N > 1` routes [`Scenario::run`] through
    /// [`ShardedCluster`] with contiguous node slices — bit-identical
    /// results either way (pinned by `tests/shard_equivalence.rs`).
    /// Descriptors written before this field existed parse as `0`.
    #[serde(default)]
    pub shards: u32,
    /// The nodes.
    pub nodes: Vec<NodeSpec>,
}

impl Scenario {
    /// Structural validation: at least one node, at least one tenant per
    /// node, valid profiles, chains, and traffic parameters. Capacity checks
    /// (cores, CAT ways) happen in [`Scenario::build_cluster`] where the
    /// allocators exist.
    pub fn validate(&self) -> SimResult<()> {
        if self.epochs == 0 {
            return Err(SimError::NodeConfig("scenario has zero epochs".into()));
        }
        if self.nodes.is_empty() {
            return Err(SimError::NodeConfig("scenario has no nodes".into()));
        }
        for (ni, node) in self.nodes.iter().enumerate() {
            node.profile.validate()?;
            if node.tenants.is_empty() {
                return Err(SimError::NodeConfig(format!("node {ni} has no tenants")));
            }
            // Records and summaries are keyed by (node, tenant name);
            // duplicates would silently merge two tenants' statistics.
            let mut names = std::collections::HashSet::new();
            for (ti, tenant) in node.tenants.iter().enumerate() {
                if !names.insert(tenant.name.as_str()) {
                    return Err(SimError::NodeConfig(format!(
                        "node {ni}: duplicate tenant name `{}`",
                        tenant.name
                    )));
                }
                // Chain invariants (non-empty, length cap, no duplicate NF
                // kinds) through the one validator `ChainSpec::new` applies,
                // so descriptors and direct construction cannot drift.
                let chain_check = ChainSpec {
                    id: ChainId(ti as u32),
                    nfs: tenant.nfs.clone(),
                };
                chain_check.validate().map_err(|e| {
                    SimError::ChainConfig(format!("node {ni} tenant {ti} (`{}`): {e}", tenant.name))
                })?;
                if tenant.sla.weight <= 0.0 || !tenant.sla.weight.is_finite() {
                    return Err(SimError::NodeConfig(format!(
                        "node {ni} tenant `{}`: weight {} must be finite and > 0",
                        tenant.name, tenant.sla.weight
                    )));
                }
                // Deserialized descriptors bypass the FlowSet / Trace
                // constructors, so re-check their invariants here — a
                // scenario that validates must also run without panicking.
                match &tenant.traffic {
                    TrafficSpec::Flows(flows) => {
                        if flows.is_empty() {
                            return Err(SimError::NodeConfig(format!(
                                "node {ni} tenant `{}` offers no flows",
                                tenant.name
                            )));
                        }
                        for f in flows.flows() {
                            f.validate().map_err(|e| {
                                SimError::NodeConfig(format!(
                                    "node {ni} tenant `{}`: flow {}: {e}",
                                    tenant.name, f.id
                                ))
                            })?;
                        }
                    }
                    TrafficSpec::Replay { trace, jitter_frac } => {
                        trace.validate().map_err(|e| {
                            SimError::TraceConfig(format!(
                                "node {ni} tenant `{}`: {e}",
                                tenant.name
                            ))
                        })?;
                        if !jitter_frac.is_finite() || *jitter_frac < 0.0 {
                            return Err(SimError::TraceConfig(format!(
                                "node {ni} tenant `{}`: jitter_frac {jitter_frac} invalid",
                                tenant.name
                            )));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// The traffic seed of tenant `tenant_idx` on node `node_idx`: a stable
    /// derivation from the master seed, so scenario runs are reproducible
    /// and per-tenant generators never alias.
    pub fn tenant_seed(&self, node_idx: usize, tenant_idx: usize) -> u64 {
        self.seed
            .wrapping_add(1 + node_idx as u64 * 1009)
            .wrapping_add(tenant_idx as u64 * 9176)
    }

    /// Lowers the descriptor into a runnable [`Cluster`]: one node per
    /// [`NodeSpec`], one chain per tenant (ids in tenant order), every knob
    /// admitted through the node's validated `set_knobs` path.
    pub fn build_cluster(&self) -> SimResult<Cluster> {
        self.validate()?;
        let mut cluster = Cluster::new();
        for (ni, spec) in self.nodes.iter().enumerate() {
            let mut node =
                Node::with_profile(ni as u32, self.tuning, self.policy, spec.profile.clone())?;
            for (ti, tenant) in spec.tenants.iter().enumerate() {
                let chain = ChainSpec::new(ChainId(ti as u32), tenant.nfs.clone())?;
                let source = tenant.traffic.build_source(self.tenant_seed(ni, ti))?;
                node.add_chain_with_source(chain, source, tenant.knobs)
                    .map_err(|e| {
                        SimError::NodeConfig(format!("node {ni} tenant `{}`: {e}", tenant.name))
                    })?;
            }
            cluster.add_node(node);
        }
        Ok(cluster)
    }

    /// Lowers the descriptor into a [`ClusterBlueprint`] — the serializable
    /// construction recipe shard workers rebuild their node slices from.
    /// Building the whole blueprint reproduces [`Scenario::build_cluster`]
    /// exactly: same profiles, same chain ids, same
    /// [`Scenario::tenant_seed`] derivation.
    pub fn to_blueprint(&self) -> SimResult<ClusterBlueprint> {
        self.validate()?;
        let mut blueprint = ClusterBlueprint::new(self.tuning, self.policy);
        for (ni, spec) in self.nodes.iter().enumerate() {
            let mut chains = Vec::with_capacity(spec.tenants.len());
            for (ti, tenant) in spec.tenants.iter().enumerate() {
                let seed = self.tenant_seed(ni, ti);
                chains.push(ChainBlueprint {
                    spec: ChainSpec::new(ChainId(ti as u32), tenant.nfs.clone())?,
                    knobs: tenant.knobs,
                    traffic: match &tenant.traffic {
                        TrafficSpec::Flows(flows) => TrafficBlueprint::Synthetic {
                            flows: flows.clone(),
                            seed,
                        },
                        TrafficSpec::Replay { trace, jitter_frac } => TrafficBlueprint::Replay {
                            trace: trace.clone(),
                            jitter_frac: *jitter_frac,
                            seed,
                        },
                    },
                });
            }
            blueprint.push_node(NodeBlueprint {
                id: ni as u32,
                profile: spec.profile.clone(),
                chains,
            });
        }
        Ok(blueprint)
    }

    /// Builds the multi-process [`ShardedCluster`] this scenario describes,
    /// partitioning across `max(shards, 1)` workers (the worker binary is
    /// resolved via [`WorkerCommand::resolve`]).
    pub fn build_sharded(&self) -> SimResult<ShardedCluster> {
        ShardedCluster::new(self.to_blueprint()?, self.shards.max(1))
    }

    /// Runs the scenario end-to-end: `epochs` lock-step cluster epochs
    /// through the fused batch path under the scenario's [`EvalMode`] —
    /// `full` uses the **pipelined** sweep ([`Cluster::run_epochs`] — on
    /// multicore hosts with enough chains, traffic generation for the next
    /// epoch overlaps the current epoch's kernel sweep), `incremental` keeps
    /// the staged batch alive across epochs and re-runs only dirty lane
    /// groups — scoring every tenant per epoch against its own agreement on
    /// its own attributed energy. Bit-identical to stepping
    /// [`Cluster::run_epoch`] per epoch in either mode.
    pub fn run(&self) -> SimResult<ScenarioRunResult> {
        if self.shards > 1 {
            return self.run_sharded();
        }
        let mut cluster = self.build_cluster()?;
        let mut records = Vec::new();
        let mut cluster_t = 0.0;
        let mut cluster_e = 0.0;
        // Stream: each report is scored and dropped as its epoch
        // aggregates, so memory stays O(1) in the horizon (the pipeline
        // itself only looks one epoch ahead).
        cluster.stream_epochs_eval(
            self.epochs as usize,
            PipelineMode::Auto,
            self.evaluation,
            |epoch, report| {
                self.score_epoch(epoch, &report, &mut records, &mut cluster_t, &mut cluster_e);
            },
        );
        Ok(self.finish_run(records, cluster_t, cluster_e))
    }

    /// The multi-process leg of [`Scenario::run`]: identical scoring over
    /// the reports a [`ShardedCluster`] merges back from its workers.
    /// Because the merge is bit-equal to the fused path, the whole
    /// [`ScenarioRunResult`] is too.
    fn run_sharded(&self) -> SimResult<ScenarioRunResult> {
        let mut cluster = self.build_sharded()?;
        let reports = cluster.run_epochs_eval(self.epochs as usize, self.evaluation)?;
        let mut records = Vec::new();
        let mut cluster_t = 0.0;
        let mut cluster_e = 0.0;
        for (epoch, report) in reports.iter().enumerate() {
            self.score_epoch(epoch, report, &mut records, &mut cluster_t, &mut cluster_e);
        }
        Ok(self.finish_run(records, cluster_t, cluster_e))
    }

    /// Scores one epoch's report into tenant records — shared verbatim by
    /// the fused and sharded run paths so they cannot drift.
    fn score_epoch(
        &self,
        epoch: usize,
        report: &ClusterEpochReport,
        records: &mut Vec<TenantEpochRecord>,
        cluster_t: &mut f64,
        cluster_e: &mut f64,
    ) {
        *cluster_t += report.total_throughput_gbps();
        *cluster_e += report.total_energy_j();
        for (ni, node_report) in report.nodes.iter().enumerate() {
            let scale = self.nodes[ni].profile.power.pmax_w * self.tuning.epoch_s;
            for (ti, tel) in node_report.telemetry.iter().enumerate() {
                let tenant = &self.nodes[ni].tenants[ti];
                records.push(TenantEpochRecord {
                    epoch: epoch as u32,
                    node: ni as u32,
                    tenant: tenant.name.clone(),
                    throughput_gbps: tel.throughput_gbps,
                    energy_j: tel.energy_j,
                    loss_frac: tel.loss_frac,
                    reward: tenant_reward_scaled(
                        &tenant.sla,
                        tel.throughput_gbps,
                        tel.energy_j,
                        tel.loss_frac,
                        scale,
                    ),
                    satisfied: tenant.sla.satisfied(
                        tel.throughput_gbps,
                        tel.energy_j,
                        tel.loss_frac,
                    ),
                });
            }
        }
    }

    fn finish_run(
        &self,
        records: Vec<TenantEpochRecord>,
        cluster_t: f64,
        cluster_e: f64,
    ) -> ScenarioRunResult {
        let tenants = self.summarize(&records);
        let epochs_f = f64::from(self.epochs.max(1));
        let mean_t = cluster_t / epochs_f;
        let mean_e = cluster_e / epochs_f;
        ScenarioRunResult {
            name: self.name.clone(),
            epochs: self.epochs,
            tenants,
            records,
            mean_throughput_gbps: mean_t,
            mean_energy_j: mean_e,
            efficiency: if mean_e > 0.0 {
                mean_t / (mean_e / 1000.0)
            } else {
                0.0
            },
        }
    }

    fn summarize(&self, records: &[TenantEpochRecord]) -> Vec<TenantSummary> {
        let mut out = Vec::new();
        for (ni, node) in self.nodes.iter().enumerate() {
            for tenant in &node.tenants {
                let rows: Vec<&TenantEpochRecord> = records
                    .iter()
                    .filter(|r| r.node == ni as u32 && r.tenant == tenant.name)
                    .collect();
                let n = rows.len().max(1) as f64;
                out.push(TenantSummary {
                    node: ni as u32,
                    tenant: tenant.name.clone(),
                    sla: tenant.sla.sla.name().to_string(),
                    mean_throughput_gbps: rows.iter().map(|r| r.throughput_gbps).sum::<f64>() / n,
                    mean_energy_j: rows.iter().map(|r| r.energy_j).sum::<f64>() / n,
                    mean_loss_frac: rows.iter().map(|r| r.loss_frac).sum::<f64>() / n,
                    mean_reward: rows.iter().map(|r| r.reward).sum::<f64>() / n,
                    satisfaction_frac: rows.iter().filter(|r| r.satisfied).count() as f64 / n,
                });
            }
        }
        out
    }

    /// Serializes the descriptor to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("scenario serialization is infallible")
    }

    /// Rebuilds a descriptor from [`Scenario::to_json`] output.
    pub fn from_json(text: &str) -> SimResult<Self> {
        serde_json::from_str(text).map_err(|e| SimError::NodeConfig(format!("scenario JSON: {e}")))
    }

    /// Content-addressed identity of this experiment: a [`ScenarioKey`]
    /// over the canonical JSON descriptor plus the horizon and seed. Two
    /// scenarios share a key iff their descriptors serialize to identical
    /// bytes — which, because the serde round-trip is exact, means their
    /// runs are bit-identical. This is the memo key the experiment-DAG
    /// driver ([`crate::dag`]) caches whole [`Scenario::run`] results
    /// under.
    pub fn key(&self) -> ScenarioKey {
        ScenarioKey::new(self.to_json().as_bytes(), self.epochs, self.seed)
    }

    // -- the named registry ------------------------------------------------

    /// Names of the canonical scenarios, in registry order. The CI scenario
    /// matrix, `tests/scenarios.rs`, and the `scenario_epoch` benches all
    /// enumerate this list (a test pins the CI workflow against it).
    pub const NAMES: [&'static str; 13] = [
        "baseline-homogeneous",
        "hetero-3-profile",
        "two-tenant-shared-node",
        "tenant-storm",
        "diurnal-trace",
        "diurnal-low-churn",
        "mixed-trace-hetero",
        "scale-out-edge",
        "flash-crowd-replay",
        "failover-blackout",
        "throttle-edge-storm",
        "fleet-diurnal-1000",
        "sharded-fleet",
    ];

    /// The canonical scenario set, one per [`Scenario::NAMES`] entry.
    pub fn registry() -> Vec<Scenario> {
        Scenario::NAMES
            .iter()
            .map(|n| Scenario::by_name(n).expect("registry names resolve"))
            .collect()
    }

    /// Builds one canonical scenario by its [`Scenario::NAMES`] entry.
    pub fn by_name(name: &str) -> Option<Scenario> {
        match name {
            "baseline-homogeneous" => Some(Self::baseline_homogeneous()),
            "hetero-3-profile" => Some(Self::hetero_3_profile()),
            "two-tenant-shared-node" => Some(Self::two_tenant_shared_node()),
            "tenant-storm" => Some(Self::tenant_storm()),
            "diurnal-trace" => Some(Self::diurnal_trace()),
            "diurnal-low-churn" => Some(Self::diurnal_low_churn()),
            "mixed-trace-hetero" => Some(Self::mixed_trace_hetero()),
            "scale-out-edge" => Some(Self::scale_out_edge()),
            "flash-crowd-replay" => Some(Self::flash_crowd_replay()),
            "failover-blackout" => Some(Self::failover_blackout()),
            "throttle-edge-storm" => Some(Self::throttle_edge_storm()),
            "fleet-diurnal-1000" => Some(Self::fleet_diurnal_1000()),
            "sharded-fleet" => Some(Self::sharded_fleet()),
            _ => None,
        }
    }

    /// The checked-in 24 h diurnal trace (`traces/diurnal.csv`).
    pub fn diurnal_trace_data() -> Trace {
        Trace::from_csv("diurnal-24h", DIURNAL_CSV).expect("checked-in trace parses")
    }

    /// The paper's evaluation setup as a scenario: three identical nodes,
    /// one canonical chain each under the five-flow workload, EE goal.
    pub fn baseline_homogeneous() -> Scenario {
        let tenant = |name: &str| TenantSpec {
            name: name.into(),
            nfs: ChainSpec::canonical_three(ChainId(0)).nfs,
            sla: TenantSla::new(Sla::EnergyEfficiency),
            knobs: KnobSettings::default_tuned(),
            traffic: TrafficSpec::Flows(FlowSet::evaluation_five_flows()),
        };
        Scenario {
            name: "baseline-homogeneous".into(),
            epochs: 8,
            seed: 42,
            tuning: SimTuning::default(),
            policy: PlatformPolicy::greennfv(),
            shards: 0,
            evaluation: EvalMode::Full,
            nodes: (0..3)
                .map(|i| NodeSpec {
                    profile: NodeProfile::paper_default(),
                    tenants: vec![tenant(&format!("t{i}"))],
                })
                .collect(),
        }
    }

    /// Three different server classes side by side: the paper node, an
    /// edge-class low-power box, and a high-performance node, each under a
    /// chain and agreement matched to its role.
    pub fn hetero_3_profile() -> Scenario {
        let mut edge_knobs = KnobSettings::default_tuned();
        edge_knobs.freq_ghz = 1.5;
        let mut hot_knobs = KnobSettings::default_tuned();
        hot_knobs.freq_ghz = 2.1;
        hot_knobs.cpu = CpuAllocation {
            cores: 4,
            share: 1.0,
        };
        Scenario {
            name: "hetero-3-profile".into(),
            epochs: 8,
            seed: 43,
            tuning: SimTuning::default(),
            policy: PlatformPolicy::greennfv(),
            shards: 0,
            evaluation: EvalMode::Full,
            nodes: vec![
                NodeSpec {
                    profile: NodeProfile::paper_default(),
                    tenants: vec![TenantSpec {
                        name: "core".into(),
                        nfs: ChainSpec::canonical_three(ChainId(0)).nfs,
                        sla: TenantSla::new(Sla::paper_max_throughput()),
                        knobs: KnobSettings::default_tuned(),
                        traffic: TrafficSpec::Flows(FlowSet::evaluation_five_flows()),
                    }],
                },
                NodeSpec {
                    profile: NodeProfile::edge_low_power(),
                    tenants: vec![TenantSpec {
                        name: "edge".into(),
                        nfs: ChainSpec::lightweight(ChainId(0)).nfs,
                        sla: TenantSla::new(Sla::MinEnergy {
                            throughput_floor_gbps: 1.0,
                        }),
                        knobs: edge_knobs,
                        traffic: TrafficSpec::Flows(
                            FlowSet::new(vec![FlowSpec::poisson(0, 8.0e5, 512)])
                                .expect("static flows are valid"),
                        ),
                    }],
                },
                NodeSpec {
                    profile: NodeProfile::high_perf(),
                    tenants: vec![TenantSpec {
                        name: "heavy".into(),
                        nfs: ChainSpec::heavyweight(ChainId(0)).nfs,
                        sla: TenantSla::new(Sla::EnergyEfficiency),
                        knobs: hot_knobs,
                        traffic: TrafficSpec::Flows(
                            FlowSet::new(vec![
                                FlowSpec::cbr(0, 6.0e5, 1024),
                                FlowSpec::poisson(1, 1.2e6, 512),
                            ])
                            .expect("static flows are valid"),
                        ),
                    }],
                },
            ],
        }
    }

    /// Two tenants with conflicting agreements sharing one node's cores and
    /// cache ways: a throughput-hungry bulk tenant next to a loss-sensitive
    /// interactive one.
    pub fn two_tenant_shared_node() -> Scenario {
        let mut bulk_knobs = KnobSettings::default_tuned();
        bulk_knobs.cpu = CpuAllocation {
            cores: 4,
            share: 1.0,
        };
        bulk_knobs.llc_fraction = 0.5;
        bulk_knobs.batch = 128;
        let mut interactive_knobs = KnobSettings::default_tuned();
        interactive_knobs.cpu = CpuAllocation {
            cores: 2,
            share: 1.0,
        };
        interactive_knobs.llc_fraction = 0.3;
        interactive_knobs.batch = 16;
        Scenario {
            name: "two-tenant-shared-node".into(),
            epochs: 8,
            seed: 44,
            tuning: SimTuning::default(),
            policy: PlatformPolicy::greennfv(),
            shards: 0,
            evaluation: EvalMode::Full,
            nodes: vec![NodeSpec {
                profile: NodeProfile::paper_default(),
                tenants: vec![
                    TenantSpec {
                        name: "bulk".into(),
                        nfs: ChainSpec::canonical_three(ChainId(0)).nfs,
                        sla: TenantSla::new(Sla::paper_max_throughput()),
                        knobs: bulk_knobs,
                        traffic: TrafficSpec::Flows(FlowSet::evaluation_five_flows()),
                    },
                    TenantSpec {
                        name: "interactive".into(),
                        nfs: ChainSpec::lightweight(ChainId(0)).nfs,
                        sla: TenantSla::new(Sla::EnergyEfficiency)
                            .with_loss_cap(0.05)
                            .with_weight(2.0),
                        knobs: interactive_knobs,
                        traffic: TrafficSpec::Flows(
                            FlowSet::new(vec![
                                FlowSpec::poisson(0, 4.0e5, 256),
                                FlowSpec::cbr(1, 2.0e5, 128),
                            ])
                            .expect("static flows are valid"),
                        ),
                    },
                ],
            }],
        }
    }

    /// Four bursty tenants storming one node: on/off flows with loss caps
    /// under tight way partitioning — the adversarial multi-tenant case.
    pub fn tenant_storm() -> Scenario {
        let bursty = |rate: f64, size: u32| {
            TrafficSpec::Flows(
                FlowSet::new(vec![FlowSpec {
                    id: 0,
                    rate_pps: rate,
                    packet_size: size,
                    pattern: ArrivalPattern::MarkovOnOff {
                        peak_factor: 3.0,
                        on_fraction: 0.4,
                    },
                }])
                .expect("static flows are valid"),
            )
        };
        let knobs = |cores: u32, llc: f64| KnobSettings {
            cpu: CpuAllocation { cores, share: 1.0 },
            llc_fraction: llc,
            ..KnobSettings::default_tuned()
        };
        let tenant = |name: &str, rate: f64, size: u32, cores: u32, llc: f64| TenantSpec {
            name: name.into(),
            nfs: ChainSpec::lightweight(ChainId(0)).nfs,
            sla: TenantSla::new(Sla::EnergyEfficiency).with_loss_cap(0.10),
            knobs: knobs(cores, llc),
            traffic: bursty(rate, size),
        };
        Scenario {
            name: "tenant-storm".into(),
            epochs: 10,
            seed: 45,
            tuning: SimTuning::default(),
            policy: PlatformPolicy::greennfv(),
            shards: 0,
            evaluation: EvalMode::Full,
            nodes: vec![NodeSpec {
                profile: NodeProfile::paper_default(),
                tenants: vec![
                    tenant("storm-a", 2.0e6, 256, 4, 0.25),
                    tenant("storm-b", 1.5e6, 512, 4, 0.25),
                    tenant("storm-c", 1.0e6, 128, 3, 0.2),
                    tenant("storm-d", 8.0e5, 1024, 3, 0.2),
                ],
            }],
        }
    }

    /// Long-horizon trace replay: one node replaying the checked-in 24 h
    /// diurnal trace at half-hour control epochs (48 epochs = one day).
    pub fn diurnal_trace() -> Scenario {
        let tuning = SimTuning {
            epoch_s: 1800.0,
            ..SimTuning::default()
        };
        Scenario {
            name: "diurnal-trace".into(),
            epochs: 48,
            seed: 46,
            tuning,
            policy: PlatformPolicy::greennfv(),
            shards: 0,
            evaluation: EvalMode::Full,
            nodes: vec![NodeSpec {
                profile: NodeProfile::paper_default(),
                tenants: vec![TenantSpec {
                    name: "diurnal".into(),
                    nfs: ChainSpec::canonical_three(ChainId(0)).nfs,
                    sla: TenantSla::new(Sla::EnergyEfficiency),
                    knobs: KnobSettings::default_tuned(),
                    traffic: TrafficSpec::Replay {
                        trace: Self::diurnal_trace_data(),
                        jitter_frac: 0.05,
                    },
                }],
            }],
        }
    }

    /// The incremental-evaluation showcase: sixty-four nodes of three
    /// tenants each (192 fused lanes), where only node 0's three tenants
    /// replay the jittered diurnal trace — every other tenant sits on a
    /// zero-jitter flat plateau trace whose sampled load never moves. Under
    /// 2% of the lanes change per epoch, and the changing lanes are adjacent
    /// (lanes 0–2, all inside the first 8-lane dirty group), so
    /// `incremental` evaluation re-runs one group out of twenty-four and
    /// scatter-copies the rest from cache — the long-plateau regime the
    /// dirty tracking is for.
    pub fn diurnal_low_churn() -> Scenario {
        let tuning = SimTuning {
            epoch_s: 1800.0,
            ..SimTuning::default()
        };
        let knobs = KnobSettings {
            cpu: CpuAllocation {
                cores: 2,
                share: 1.0,
            },
            llc_fraction: 0.25,
            ..KnobSettings::default_tuned()
        };
        // A one-point trace replayed cyclically with zero jitter: the
        // sampled load is bitwise identical every window, so the lane
        // reports `Unchanged` from the second epoch on.
        let plateau = |rate_pps: f64, packet_size: u32| TrafficSpec::Replay {
            trace: Trace::new(
                "plateau",
                vec![TracePoint {
                    duration_s: 3600.0,
                    rate_pps,
                    packet_size,
                    burstiness: 1.2,
                }],
            )
            .expect("static trace is valid"),
            jitter_frac: 0.0,
        };
        let nodes = (0..64)
            .map(|ni| NodeSpec {
                profile: NodeProfile::paper_default(),
                tenants: (0..3)
                    .map(|ti| TenantSpec {
                        name: format!("n{ni}-t{ti}"),
                        nfs: ChainSpec::lightweight(ChainId(0)).nfs,
                        sla: TenantSla::new(Sla::EnergyEfficiency),
                        knobs,
                        traffic: if ni == 0 {
                            // The churn: jittered diurnal replay moves
                            // every window.
                            TrafficSpec::Replay {
                                trace: Self::diurnal_trace_data(),
                                jitter_frac: 0.05,
                            }
                        } else {
                            plateau(
                                1.5e5 + ni as f64 * 1.7e4 + ti as f64 * 4.3e4,
                                [256, 512, 1024][ti],
                            )
                        },
                    })
                    .collect(),
            })
            .collect();
        Scenario {
            name: "diurnal-low-churn".into(),
            epochs: 12,
            seed: 49,
            tuning,
            policy: PlatformPolicy::greennfv(),
            shards: 0,
            evaluation: EvalMode::Incremental,
            nodes,
        }
    }

    /// A scale-out edge front end built from the newer NF kinds: an
    /// edge-class node running load balancer → dedup → NAT next to a
    /// monitor-only colo tenant, both under loss-capped agreements — chain
    /// diversity beyond the paper's canonical three chains.
    pub fn scale_out_edge() -> Scenario {
        let mut frontend_knobs = KnobSettings::default_tuned();
        frontend_knobs.freq_ghz = 1.6;
        frontend_knobs.llc_fraction = 0.5;
        frontend_knobs.batch = 64;
        let mut colo_knobs = KnobSettings::default_tuned();
        colo_knobs.freq_ghz = 1.6;
        colo_knobs.llc_fraction = 0.2;
        Scenario {
            name: "scale-out-edge".into(),
            epochs: 8,
            seed: 48,
            tuning: SimTuning::default(),
            policy: PlatformPolicy::greennfv(),
            shards: 0,
            evaluation: EvalMode::Full,
            nodes: vec![NodeSpec {
                profile: NodeProfile::edge_low_power(),
                tenants: vec![
                    TenantSpec {
                        name: "frontend".into(),
                        nfs: ChainSpec::scale_out(ChainId(0)).nfs,
                        sla: TenantSla::new(Sla::EnergyEfficiency).with_loss_cap(0.15),
                        knobs: frontend_knobs,
                        traffic: TrafficSpec::Flows(
                            FlowSet::new(vec![
                                FlowSpec::poisson(0, 9.0e5, 512),
                                FlowSpec::cbr(1, 3.0e5, 256),
                            ])
                            .expect("static flows are valid"),
                        ),
                    },
                    TenantSpec {
                        name: "colo-monitor".into(),
                        nfs: vec![NfKind::Monitor],
                        sla: TenantSla::new(Sla::MinEnergy {
                            throughput_floor_gbps: 0.2,
                        })
                        .with_weight(0.5),
                        knobs: colo_knobs,
                        traffic: TrafficSpec::Flows(
                            FlowSet::new(vec![FlowSpec::poisson(0, 2.0e5, 512)])
                                .expect("static flows are valid"),
                        ),
                    },
                ],
            }],
        }
    }

    /// Everything at once: a heterogeneous cluster mixing trace replay and
    /// synthetic tenants under distinct agreements — the widest workload the
    /// registry exercises.
    pub fn mixed_trace_hetero() -> Scenario {
        let tuning = SimTuning {
            epoch_s: 1800.0,
            ..SimTuning::default()
        };
        let mut edge_knobs = KnobSettings::default_tuned();
        edge_knobs.freq_ghz = 1.4;
        edge_knobs.llc_fraction = 0.6;
        let mut colo_knobs = KnobSettings::default_tuned();
        colo_knobs.llc_fraction = 0.3;
        Scenario {
            name: "mixed-trace-hetero".into(),
            epochs: 16,
            seed: 47,
            tuning,
            policy: PlatformPolicy::greennfv(),
            shards: 0,
            evaluation: EvalMode::Full,
            nodes: vec![
                NodeSpec {
                    profile: NodeProfile::paper_default(),
                    tenants: vec![
                        TenantSpec {
                            name: "replay".into(),
                            nfs: ChainSpec::canonical_three(ChainId(0)).nfs,
                            sla: TenantSla::new(Sla::EnergyEfficiency),
                            knobs: KnobSettings::default_tuned(),
                            traffic: TrafficSpec::Replay {
                                trace: Self::diurnal_trace_data(),
                                jitter_frac: 0.1,
                            },
                        },
                        TenantSpec {
                            name: "colo".into(),
                            nfs: ChainSpec::lightweight(ChainId(0)).nfs,
                            sla: TenantSla::new(Sla::MinEnergy {
                                throughput_floor_gbps: 2.0,
                            })
                            .with_loss_cap(0.2),
                            knobs: colo_knobs,
                            traffic: TrafficSpec::Flows(
                                FlowSet::new(vec![FlowSpec::poisson(0, 6.0e5, 512)])
                                    .expect("static flows are valid"),
                            ),
                        },
                    ],
                },
                NodeSpec {
                    profile: NodeProfile::edge_low_power(),
                    tenants: vec![TenantSpec {
                        name: "edge".into(),
                        nfs: ChainSpec::lightweight(ChainId(0)).nfs,
                        sla: TenantSla::new(Sla::MinEnergy {
                            throughput_floor_gbps: 0.5,
                        }),
                        knobs: edge_knobs,
                        traffic: TrafficSpec::Flows(
                            FlowSet::new(vec![FlowSpec::cbr(0, 4.0e5, 512)])
                                .expect("static flows are valid"),
                        ),
                    }],
                },
                NodeSpec {
                    profile: NodeProfile::high_perf(),
                    tenants: vec![TenantSpec {
                        name: "heavy".into(),
                        nfs: ChainSpec::heavyweight(ChainId(0)).nfs,
                        // The paper's 2000 J cap assumes 30 s epochs; scale
                        // it to this scenario's half-hour epochs (×60).
                        sla: TenantSla::new(Sla::MaxThroughput {
                            energy_cap_j: 200_000.0,
                        }),
                        knobs: KnobSettings {
                            cpu: CpuAllocation {
                                cores: 4,
                                share: 1.0,
                            },
                            freq_ghz: 2.0,
                            ..KnobSettings::default_tuned()
                        },
                        traffic: TrafficSpec::Flows(
                            FlowSet::new(vec![
                                FlowSpec::cbr(0, 4.0e5, 1518),
                                FlowSpec::poisson(1, 1.0e6, 512),
                            ])
                            .expect("static flows are valid"),
                        ),
                    }],
                },
            ],
        }
    }
    // -- scenarios promoted from the fuzz corpus ---------------------------
    //
    // The four constructors below started life as `scenario::fuzz` corpus
    // members and were snapshotted by hand into explicit builders: a
    // promoted scenario must never shift when the generator's draw order
    // changes, so the registry pins the exact descriptor, not the seed.

    /// Promoted from the fuzz corpus (shape `flash-crowd`): one paper node
    /// whose main tenant replays a steady → 5× spike → recovery trace with
    /// mild jitter, next to a synthetic colo tenant. The spike occupies the
    /// middle fifth of the horizon, so it lands inside a run, not at its
    /// edges.
    pub fn flash_crowd_replay() -> Scenario {
        let epochs = 12u32;
        let epoch_s = 30.0;
        let horizon = f64::from(epochs) * epoch_s;
        let segment = |frac: f64, rate_pps: f64| TracePoint {
            duration_s: frac * horizon,
            rate_pps,
            packet_size: 512,
            burstiness: 1.6,
        };
        let mut crowd_knobs = KnobSettings::default_tuned();
        crowd_knobs.cpu = CpuAllocation {
            cores: 3,
            share: 1.0,
        };
        crowd_knobs.llc_fraction = 0.5;
        crowd_knobs.batch = 64;
        let mut colo_knobs = KnobSettings::default_tuned();
        colo_knobs.llc_fraction = 0.2;
        Scenario {
            name: "flash-crowd-replay".into(),
            epochs,
            seed: 50,
            tuning: SimTuning::default(),
            policy: PlatformPolicy::greennfv(),
            shards: 0,
            evaluation: EvalMode::Full,
            nodes: vec![NodeSpec {
                profile: NodeProfile::paper_default(),
                tenants: vec![
                    TenantSpec {
                        name: "crowd".into(),
                        nfs: ChainSpec::canonical_three(ChainId(0)).nfs,
                        sla: TenantSla::new(Sla::EnergyEfficiency).with_loss_cap(0.2),
                        knobs: crowd_knobs,
                        traffic: TrafficSpec::Replay {
                            trace: Trace::new(
                                "flash",
                                vec![
                                    segment(0.4, 5.0e5),
                                    segment(0.2, 2.5e6),
                                    segment(0.4, 5.0e5),
                                ],
                            )
                            .expect("static trace is valid"),
                            jitter_frac: 0.05,
                        },
                    },
                    TenantSpec {
                        name: "colo".into(),
                        nfs: ChainSpec::lightweight(ChainId(0)).nfs,
                        sla: TenantSla::new(Sla::MinEnergy {
                            throughput_floor_gbps: 0.2,
                        })
                        .with_weight(0.5),
                        knobs: colo_knobs,
                        traffic: TrafficSpec::Flows(
                            FlowSet::new(vec![FlowSpec::poisson(0, 3.0e5, 512)])
                                .expect("static flows are valid"),
                        ),
                    },
                ],
            }],
        }
    }

    /// Promoted from the fuzz corpus (shape `node-failure`): three paper
    /// nodes replaying the same service trace; node 1 blacks out over the
    /// middle fifth of the horizon (its rate collapses to a trickle) while
    /// the two survivors absorb a 1.5× failover surge over the same window.
    pub fn failover_blackout() -> Scenario {
        let epochs = 10u32;
        let epoch_s = 30.0;
        let horizon = f64::from(epochs) * epoch_s;
        let service = |name: &str, mid_rate: f64| {
            Trace::new(
                name,
                vec![
                    TracePoint {
                        duration_s: 0.4 * horizon,
                        rate_pps: 8.0e5,
                        packet_size: 512,
                        burstiness: 1.4,
                    },
                    TracePoint {
                        duration_s: 0.2 * horizon,
                        rate_pps: mid_rate,
                        packet_size: 512,
                        burstiness: 1.4,
                    },
                    TracePoint {
                        duration_s: 0.4 * horizon,
                        rate_pps: 8.0e5,
                        packet_size: 512,
                        burstiness: 1.4,
                    },
                ],
            )
            .expect("static trace is valid")
        };
        let nodes = (0..3)
            .map(|ni| NodeSpec {
                profile: NodeProfile::paper_default(),
                tenants: vec![TenantSpec {
                    name: format!("svc-{ni}"),
                    nfs: ChainSpec::canonical_three(ChainId(0)).nfs,
                    sla: TenantSla::new(Sla::EnergyEfficiency),
                    knobs: KnobSettings::default_tuned(),
                    traffic: TrafficSpec::Replay {
                        trace: if ni == 1 {
                            service("blackout", 8.0e2)
                        } else {
                            service("failover", 1.2e6)
                        },
                        jitter_frac: 0.0,
                    },
                }],
            })
            .collect();
        Scenario {
            name: "failover-blackout".into(),
            epochs,
            seed: 51,
            tuning: SimTuning::default(),
            policy: PlatformPolicy::greennfv(),
            shards: 0,
            evaluation: EvalMode::Full,
            nodes,
        }
    }

    /// Promoted from the fuzz corpus (shapes `dvfs-throttle` × `tenant-storm`
    /// combined): an edge-class node pinned at its minimum frequency (thermal
    /// capping) while three bursty on/off tenants storm it under loss caps —
    /// the least headroom the corpus found.
    pub fn throttle_edge_storm() -> Scenario {
        let profile = NodeProfile::edge_low_power();
        let bursty = |rate: f64, size: u32, peak: f64| {
            TrafficSpec::Flows(
                FlowSet::new(vec![FlowSpec {
                    id: 0,
                    rate_pps: rate,
                    packet_size: size,
                    pattern: ArrivalPattern::MarkovOnOff {
                        peak_factor: peak,
                        on_fraction: 0.35,
                    },
                }])
                .expect("static flows are valid"),
            )
        };
        let knobs = |cores: u32, llc: f64, batch: u32| KnobSettings {
            cpu: CpuAllocation { cores, share: 1.0 },
            // The throttle: pinned to the bottom DVFS rung of the edge
            // profile regardless of load.
            freq_ghz: profile.freq_min_ghz,
            llc_fraction: llc,
            batch,
            ..KnobSettings::default_tuned()
        };
        Scenario {
            name: "throttle-edge-storm".into(),
            epochs: 10,
            seed: 52,
            tuning: SimTuning::default(),
            policy: PlatformPolicy::greennfv(),
            shards: 0,
            evaluation: EvalMode::Full,
            nodes: vec![NodeSpec {
                profile: profile.clone(),
                tenants: vec![
                    TenantSpec {
                        name: "storm-a".into(),
                        nfs: ChainSpec::lightweight(ChainId(0)).nfs,
                        sla: TenantSla::new(Sla::EnergyEfficiency).with_loss_cap(0.15),
                        knobs: knobs(3, 0.3, 64),
                        traffic: bursty(1.8e6, 256, 3.0),
                    },
                    TenantSpec {
                        name: "storm-b".into(),
                        nfs: ChainSpec::lightweight(ChainId(0)).nfs,
                        sla: TenantSla::new(Sla::EnergyEfficiency).with_loss_cap(0.15),
                        knobs: knobs(2, 0.25, 32),
                        traffic: bursty(1.2e6, 512, 2.5),
                    },
                    TenantSpec {
                        name: "storm-c".into(),
                        nfs: vec![NfKind::Monitor, NfKind::LoadBalancer],
                        sla: TenantSla::new(Sla::EnergyEfficiency).with_loss_cap(0.1),
                        knobs: knobs(2, 0.2, 16),
                        traffic: bursty(9.0e5, 128, 2.0),
                    },
                ],
            }],
        }
    }

    /// Promoted from the fuzz corpus (shape `diurnal-fleet`, scaled to the
    /// issue's thousand-node target): a 1000-node fleet where node 0 replays
    /// the jittered diurnal trace and all 999 others sit on zero-jitter
    /// plateau replays — 0.1% lane churn per steady epoch, the largest
    /// incremental-evaluation workload in the registry.
    pub fn fleet_diurnal_1000() -> Scenario {
        let tuning = SimTuning {
            epoch_s: 1800.0,
            ..SimTuning::default()
        };
        let knobs = KnobSettings {
            cpu: CpuAllocation {
                cores: 2,
                share: 1.0,
            },
            llc_fraction: 0.4,
            ..KnobSettings::default_tuned()
        };
        let nodes = (0..1000)
            .map(|ni| NodeSpec {
                profile: NodeProfile::paper_default(),
                tenants: vec![TenantSpec {
                    name: format!("fleet-{ni}"),
                    nfs: ChainSpec::lightweight(ChainId(0)).nfs,
                    sla: TenantSla::new(Sla::EnergyEfficiency),
                    knobs,
                    traffic: if ni == 0 {
                        TrafficSpec::Replay {
                            trace: Self::diurnal_trace_data(),
                            jitter_frac: 0.05,
                        }
                    } else {
                        TrafficSpec::Replay {
                            trace: Trace::new(
                                "plateau",
                                vec![TracePoint {
                                    duration_s: 3600.0,
                                    rate_pps: 1.0e5 + ni as f64 * 1.1e3,
                                    packet_size: [256, 512, 1024][ni % 3],
                                    burstiness: 1.3,
                                }],
                            )
                            .expect("static trace is valid"),
                            jitter_frac: 0.0,
                        }
                    },
                }],
            })
            .collect();
        Scenario {
            name: "fleet-diurnal-1000".into(),
            epochs: 6,
            seed: 53,
            tuning,
            policy: PlatformPolicy::greennfv(),
            shards: 0,
            evaluation: EvalMode::Incremental,
            nodes,
        }
    }

    /// The multi-process showcase: six nodes alternating paper-class and
    /// edge-class profiles, synthetic and replay traffic, partitioned
    /// across two worker processes (`shards: 2`). [`Scenario::run`] spawns
    /// the workers and merges their epoch streams — bit-identical to
    /// running the same descriptor with `shards: 0`, which is exactly what
    /// `tests/shard_equivalence.rs` pins.
    pub fn sharded_fleet() -> Scenario {
        let mut knobs = KnobSettings::default_tuned();
        knobs.freq_ghz = 1.6; // inside the edge profile's capped ladder
        let nodes = (0..6)
            .map(|ni| NodeSpec {
                profile: if ni % 2 == 0 {
                    NodeProfile::paper_default()
                } else {
                    NodeProfile::edge_low_power()
                },
                tenants: vec![TenantSpec {
                    name: format!("shard-t{ni}"),
                    nfs: if ni % 2 == 0 {
                        ChainSpec::canonical_three(ChainId(0)).nfs
                    } else {
                        ChainSpec::lightweight(ChainId(0)).nfs
                    },
                    sla: TenantSla::new(Sla::EnergyEfficiency),
                    knobs,
                    traffic: if ni % 3 == 0 {
                        TrafficSpec::Replay {
                            trace: Trace::new(
                                "shard-plateau",
                                vec![TracePoint {
                                    duration_s: 3600.0,
                                    rate_pps: 9.0e5 + ni as f64 * 5.0e4,
                                    packet_size: 512,
                                    burstiness: 1.4,
                                }],
                            )
                            .expect("static trace is valid"),
                            jitter_frac: 0.08,
                        }
                    } else {
                        TrafficSpec::Flows(FlowSet::evaluation_five_flows())
                    },
                }],
            })
            .collect();
        Scenario {
            name: "sharded-fleet".into(),
            epochs: 6,
            seed: 54,
            tuning: SimTuning::default(),
            policy: PlatformPolicy::greennfv(),
            shards: 2,
            evaluation: EvalMode::Full,
            nodes,
        }
    }
}

/// One tenant's outcome in one scenario epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantEpochRecord {
    /// Epoch index.
    pub epoch: u32,
    /// Node index in the scenario.
    pub node: u32,
    /// Tenant name.
    pub tenant: String,
    /// Delivered throughput, Gbps.
    pub throughput_gbps: f64,
    /// Attributed tenant energy, joules.
    pub energy_j: f64,
    /// Fraction of offered packets lost.
    pub loss_frac: f64,
    /// Reward under the tenant's agreement.
    pub reward: f64,
    /// Whether the epoch satisfied the whole agreement.
    pub satisfied: bool,
}

/// Per-tenant aggregate over a scenario run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSummary {
    /// Node index in the scenario.
    pub node: u32,
    /// Tenant name.
    pub tenant: String,
    /// Short name of the tenant's goal.
    pub sla: String,
    /// Mean delivered throughput, Gbps.
    pub mean_throughput_gbps: f64,
    /// Mean attributed energy per epoch, joules.
    pub mean_energy_j: f64,
    /// Mean loss fraction.
    pub mean_loss_frac: f64,
    /// Mean reward under the tenant's agreement.
    pub mean_reward: f64,
    /// Fraction of epochs satisfying the whole agreement.
    pub satisfaction_frac: f64,
}

/// Result of [`Scenario::run`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioRunResult {
    /// Scenario name.
    pub name: String,
    /// Epochs executed.
    pub epochs: u32,
    /// Per-tenant aggregates, in (node, tenant) order.
    pub tenants: Vec<TenantSummary>,
    /// Full per-epoch per-tenant trace.
    pub records: Vec<TenantEpochRecord>,
    /// Mean cluster throughput per epoch, Gbps.
    pub mean_throughput_gbps: f64,
    /// Mean cluster energy per epoch, joules.
    pub mean_energy_j: f64,
    /// Cluster energy efficiency, Gbps per kJ.
    pub efficiency: f64,
}

impl ScenarioRunResult {
    /// A tenant's summary by node index and name.
    pub fn tenant(&self, node: u32, name: &str) -> Option<&TenantSummary> {
        self.tenants
            .iter()
            .find(|t| t.node == node && t.tenant == name)
    }

    /// Renders the per-tenant summary table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .tenants
            .iter()
            .map(|t| {
                vec![
                    format!("{}", t.node),
                    t.tenant.clone(),
                    t.sla.clone(),
                    format!("{:.2}", t.mean_throughput_gbps),
                    format!("{:.0}", t.mean_energy_j),
                    format!("{:.3}", t.mean_loss_frac),
                    format!("{:.0}", t.satisfaction_frac * 100.0),
                    format!("{:.2}", t.mean_reward),
                ]
            })
            .collect();
        table(
            &[
                "Node", "Tenant", "SLA", "T (Gbps)", "E (J)", "Loss", "Sat (%)", "Reward",
            ],
            &rows,
        )
    }
}

// ---------------------------------------------------------------------------
// Legacy phase-based workload schedules
// ---------------------------------------------------------------------------

/// One phase of a dynamic workload schedule.
#[derive(Debug, Clone)]
pub struct WorkloadPhase {
    /// Label for reports.
    pub label: &'static str,
    /// Flows offered during this phase.
    pub flows: FlowSet,
    /// Number of control epochs the phase lasts.
    pub epochs: u32,
}

/// A named schedule of workload phases driven against one controller (the
/// paper's "changing environmental conditions" experiment). For full
/// multi-node / multi-tenant / trace-driven descriptors see [`Scenario`].
#[derive(Debug, Clone)]
pub struct WorkloadSchedule {
    /// Schedule name.
    pub name: &'static str,
    /// Phases in order.
    pub phases: Vec<WorkloadPhase>,
}

impl WorkloadSchedule {
    /// Diurnal pattern: night trickle → morning ramp → peak → evening decay.
    pub fn diurnal() -> Self {
        let mk = |pps: f64| FlowSet::new(vec![FlowSpec::poisson(0, pps, 512)]).expect("valid");
        WorkloadSchedule {
            name: "diurnal",
            phases: vec![
                WorkloadPhase {
                    label: "night",
                    flows: mk(2.0e5),
                    epochs: 6,
                },
                WorkloadPhase {
                    label: "morning",
                    flows: mk(1.2e6),
                    epochs: 6,
                },
                WorkloadPhase {
                    label: "peak",
                    flows: mk(2.4e6),
                    epochs: 6,
                },
                WorkloadPhase {
                    label: "evening",
                    flows: mk(8.0e5),
                    epochs: 6,
                },
            ],
        }
    }

    /// Flash crowd: steady load with a sudden 4× bursty spike, then recovery.
    pub fn flash_crowd() -> Self {
        let steady = FlowSet::new(vec![FlowSpec::cbr(0, 6.0e5, 512)]).expect("valid");
        let spike = FlowSet::new(vec![FlowSpec {
            id: 0,
            rate_pps: 2.4e6,
            packet_size: 512,
            pattern: ArrivalPattern::MarkovOnOff {
                peak_factor: 2.0,
                on_fraction: 0.5,
            },
        }])
        .expect("valid");
        WorkloadSchedule {
            name: "flash-crowd",
            phases: vec![
                WorkloadPhase {
                    label: "steady",
                    flows: steady.clone(),
                    epochs: 8,
                },
                WorkloadPhase {
                    label: "spike",
                    flows: spike,
                    epochs: 6,
                },
                WorkloadPhase {
                    label: "recovery",
                    flows: steady,
                    epochs: 8,
                },
            ],
        }
    }

    /// Packet-size shift: the same bit rate delivered first in large then in
    /// tiny packets (a 10× pps increase at constant Gbps).
    pub fn packet_size_shift() -> Self {
        WorkloadSchedule {
            name: "packet-size-shift",
            phases: vec![
                WorkloadPhase {
                    label: "large-packets",
                    flows: FlowSet::new(vec![FlowSpec::cbr(0, 4.0e5, 1280)]).expect("valid"),
                    epochs: 8,
                },
                WorkloadPhase {
                    label: "small-packets",
                    flows: FlowSet::new(vec![FlowSpec::cbr(0, 4.0e6, 128)]).expect("valid"),
                    epochs: 8,
                },
            ],
        }
    }

    /// Total epochs across all phases.
    pub fn total_epochs(&self) -> u32 {
        self.phases.iter().map(|p| p.epochs).sum()
    }
}

/// Per-phase summary of a dynamic run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseSummary {
    /// Phase label.
    pub label: String,
    /// Mean delivered throughput (Gbps).
    pub mean_throughput_gbps: f64,
    /// Mean offered load (Gbps) during the phase.
    pub offered_gbps: f64,
    /// Mean epoch energy (J).
    pub mean_energy_j: f64,
    /// Mean efficiency (Gbps/kJ).
    pub efficiency: f64,
}

/// Result of driving a controller through a workload schedule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScheduleResult {
    /// Controller name.
    pub controller: String,
    /// Per-phase summaries, in order.
    pub phases: Vec<PhaseSummary>,
    /// Full epoch trace.
    pub trace: Vec<EpochTrace>,
}

impl ScheduleResult {
    /// Mean energy across the whole schedule.
    pub fn mean_energy_j(&self) -> f64 {
        if self.trace.is_empty() {
            return 0.0;
        }
        self.trace.iter().map(|t| t.energy_j).sum::<f64>() / self.trace.len() as f64
    }

    /// Phase summary by label.
    pub fn phase(&self, label: &str) -> Option<&PhaseSummary> {
        self.phases.iter().find(|p| p.label == label)
    }
}

/// Drives `ctrl` through `schedule`, swapping the offered flows at each
/// phase boundary (the controller keeps its state — that's the adaptation
/// being tested).
pub fn run_schedule(
    ctrl: &mut dyn Controller,
    schedule: &WorkloadSchedule,
    tuning: SimTuning,
    power: PowerModel,
    seed: u64,
) -> ScheduleResult {
    let first = &schedule.phases[0];
    let mut node = Node::new(0, tuning, power, ctrl.platform());
    let mut knobs = ctrl.initial_knobs(&first.flows);
    node.add_chain(
        ChainSpec::canonical_three(ChainId(0)),
        first.flows.clone(),
        knobs,
        seed,
    )
    .expect("initial knobs fit");
    let mut trace = Vec::with_capacity(schedule.total_epochs() as usize);
    let mut phases = Vec::with_capacity(schedule.phases.len());
    for (pi, phase) in schedule.phases.iter().enumerate() {
        if pi > 0 {
            node.set_flows(
                ChainId(0),
                phase.flows.clone(),
                seed.wrapping_add(pi as u64),
            )
            .expect("chain exists");
        }
        let start = trace.len();
        for _ in 0..phase.epochs {
            let report = node.run_epoch();
            let t = report.telemetry[0];
            trace.push(EpochTrace {
                throughput_gbps: t.throughput_gbps,
                energy_j: report.node.energy_j,
                cpu_util: t.cpu_util,
                knobs,
            });
            let next = ctrl.decide(&t, &knobs);
            if node.set_knobs(ChainId(0), next).is_ok() {
                knobs = next;
            }
        }
        let slice = &trace[start..];
        let n = slice.len().max(1) as f64;
        let mean_t = slice.iter().map(|e| e.throughput_gbps).sum::<f64>() / n;
        let mean_e = slice.iter().map(|e| e.energy_j).sum::<f64>() / n;
        phases.push(PhaseSummary {
            label: phase.label.to_string(),
            mean_throughput_gbps: mean_t,
            offered_gbps: phase.flows.total_offered_gbps(),
            mean_energy_j: mean_e,
            efficiency: if mean_e > 0.0 {
                mean_t / (mean_e / 1000.0)
            } else {
                0.0
            },
        });
    }
    ScheduleResult {
        controller: ctrl.name().to_string(),
        phases,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::BaselineController;
    use crate::eepstate::EePstateController;

    #[test]
    fn registry_resolves_every_name() {
        let reg = Scenario::registry();
        assert_eq!(reg.len(), Scenario::NAMES.len());
        for (sc, name) in reg.iter().zip(Scenario::NAMES) {
            assert_eq!(sc.name, name);
            sc.validate().expect("registry scenarios validate");
        }
        assert!(Scenario::by_name("no-such-scenario").is_none());
    }

    #[test]
    fn registry_scenarios_build_and_run() {
        for mut sc in Scenario::registry() {
            // The sharded showcase needs the worker binary built by the
            // umbrella crate; run it fused here so `cargo test -p greennfv`
            // stays self-contained. The results are bit-identical, and the
            // real multi-process path is pinned by
            // `tests/shard_equivalence.rs`.
            sc.shards = 0;
            let r = sc.run().expect("registry scenarios run");
            assert_eq!(r.epochs, sc.epochs);
            let tenants: usize = sc.nodes.iter().map(|n| n.tenants.len()).sum();
            assert_eq!(r.records.len(), tenants * sc.epochs as usize, "{}", sc.name);
            assert_eq!(r.tenants.len(), tenants);
            assert!(r.mean_throughput_gbps > 0.0, "{}", sc.name);
            assert!(r.mean_energy_j > 0.0, "{}", sc.name);
            assert!(r.efficiency > 0.0, "{}", sc.name);
            assert!(r.render().contains(&r.tenants[0].tenant));
        }
    }

    #[test]
    fn scenario_runs_are_deterministic() {
        let sc = Scenario::two_tenant_shared_node();
        assert_eq!(sc.run().unwrap(), sc.run().unwrap());
    }

    #[test]
    fn validation_catches_structural_errors() {
        let mut sc = Scenario::baseline_homogeneous();
        sc.epochs = 0;
        assert!(sc.validate().is_err());

        let mut sc = Scenario::baseline_homogeneous();
        sc.nodes.clear();
        assert!(sc.validate().is_err());

        let mut sc = Scenario::baseline_homogeneous();
        sc.nodes[0].tenants[0].nfs.clear();
        assert!(sc.validate().is_err());

        let mut sc = Scenario::baseline_homogeneous();
        sc.nodes[0].tenants[0].sla.weight = 0.0;
        assert!(sc.validate().is_err());

        let mut sc = Scenario::baseline_homogeneous();
        sc.nodes[0].profile.ddio_ways = 99;
        assert!(sc.validate().is_err());
    }

    #[test]
    fn validation_rejects_duplicate_tenant_names_per_node() {
        // Summaries are keyed by (node, tenant name); duplicates would merge
        // two tenants' statistics silently.
        let mut sc = Scenario::two_tenant_shared_node();
        let clone_name = sc.nodes[0].tenants[0].name.clone();
        sc.nodes[0].tenants[1].name = clone_name;
        assert!(sc.validate().is_err());
        // The same name on *different* nodes is fine.
        let mut sc = Scenario::baseline_homogeneous();
        for node in &mut sc.nodes {
            node.tenants[0].name = "same".into();
        }
        assert!(sc.validate().is_ok());
    }

    #[test]
    fn deserialized_descriptors_cannot_smuggle_invalid_traffic() {
        // serde bypasses the Trace/FlowSet constructors; validate() must
        // re-check their invariants so a parsed scenario never panics later.
        let sc = Scenario::diurnal_trace();
        let json = sc.to_json();
        let empty_points = json.replace(
            "\"points\":[{",
            "\"points\":[],\"__rest\":[{", // orphan the real points
        );
        let parsed = Scenario::from_json(&empty_points).expect("structurally valid JSON");
        assert!(parsed.validate().is_err(), "empty trace must not validate");
        assert!(
            parsed.run().is_err(),
            "and must surface as an error, not a panic"
        );

        let sc = Scenario::baseline_homogeneous();
        let bad_flow = sc
            .to_json()
            .replace("\"packet_size\":1518", "\"packet_size\":7");
        let parsed = Scenario::from_json(&bad_flow).expect("structurally valid JSON");
        assert!(
            parsed.validate().is_err(),
            "out-of-range flow must not validate"
        );
    }

    #[test]
    fn build_rejects_oversubscribed_tenants() {
        let mut sc = Scenario::two_tenant_shared_node();
        // Both tenants asking for 90% of the ways cannot fit one node.
        for t in &mut sc.nodes[0].tenants {
            t.knobs.llc_fraction = 0.9;
        }
        assert!(sc.build_cluster().is_err());
    }

    #[test]
    fn json_round_trip_preserves_descriptor_and_results() {
        for sc in [
            Scenario::two_tenant_shared_node(),
            Scenario::diurnal_trace(),
        ] {
            let json = sc.to_json();
            let back = Scenario::from_json(&json).unwrap();
            assert_eq!(back, sc);
            assert_eq!(back.run().unwrap(), sc.run().unwrap());
        }
        assert!(Scenario::from_json("{not json").is_err());
    }

    #[test]
    fn two_tenant_node_reports_both_agreements() {
        let r = Scenario::two_tenant_shared_node().run().unwrap();
        let bulk = r.tenant(0, "bulk").unwrap();
        let interactive = r.tenant(0, "interactive").unwrap();
        assert_eq!(bulk.sla, "MaxT");
        assert_eq!(interactive.sla, "EE");
        // The bulk tenant moves far more traffic and is charged more energy.
        assert!(bulk.mean_throughput_gbps > interactive.mean_throughput_gbps);
        assert!(bulk.mean_energy_j > interactive.mean_energy_j);
        assert!(r.tenant(0, "nobody").is_none());
    }

    #[test]
    fn diurnal_replay_shows_day_night_swing() {
        let r = Scenario::diurnal_trace().run().unwrap();
        // 48 half-hour epochs cover the 24 h trace: the peak-hour epochs
        // must carry far more traffic than the small-hours epochs.
        let night = r.records[4].throughput_gbps; // ~02:00
        let peak = r
            .records
            .iter()
            .map(|rec| rec.throughput_gbps)
            .fold(0.0f64, f64::max);
        assert!(peak > 3.0 * night, "peak {peak} vs night {night}");
    }

    #[test]
    fn low_churn_incremental_matches_full_evaluation() {
        // The registry's incremental scenario must be a pure cost knob:
        // flipping it to full evaluation reproduces every record exactly.
        let inc = Scenario::diurnal_low_churn();
        assert_eq!(inc.evaluation, EvalMode::Incremental);
        let mut full = inc.clone();
        full.evaluation = EvalMode::Full;
        assert_eq!(inc.run().unwrap(), full.run().unwrap());
    }

    #[test]
    fn evaluation_field_defaults_to_full_and_round_trips() {
        let sc = Scenario::diurnal_low_churn();
        let json = sc.to_json();
        assert!(json.contains("\"evaluation\":\"incremental\""));
        assert_eq!(Scenario::from_json(&json).unwrap(), sc);
        // Descriptors written before the field existed omit it entirely and
        // must parse as full evaluation.
        let legacy = json.replace("\"evaluation\":\"incremental\",", "");
        assert!(!legacy.contains("evaluation"));
        let back = Scenario::from_json(&legacy).unwrap();
        assert_eq!(back.evaluation, EvalMode::Full);
    }

    #[test]
    fn tenant_seeds_never_alias_within_registry() {
        for sc in Scenario::registry() {
            let mut seen = std::collections::HashSet::new();
            for ni in 0..sc.nodes.len() {
                for ti in 0..sc.nodes[ni].tenants.len() {
                    assert!(seen.insert(sc.tenant_seed(ni, ti)), "{}", sc.name);
                }
            }
        }
    }

    // -- legacy schedule tests ---------------------------------------------

    #[test]
    fn schedules_have_sane_phases() {
        for s in [
            WorkloadSchedule::diurnal(),
            WorkloadSchedule::flash_crowd(),
            WorkloadSchedule::packet_size_shift(),
        ] {
            assert!(!s.phases.is_empty());
            assert!(s.total_epochs() >= 10);
            for p in &s.phases {
                assert!(p.flows.total_rate_pps() > 0.0, "{}", p.label);
            }
        }
    }

    #[test]
    fn run_produces_per_phase_summaries() {
        let s = WorkloadSchedule::diurnal();
        let r = run_schedule(
            &mut BaselineController,
            &s,
            SimTuning::default(),
            PowerModel::default(),
            3,
        );
        assert_eq!(r.phases.len(), 4);
        assert_eq!(r.trace.len() as u32, s.total_epochs());
        assert!(r.phase("peak").is_some());
        assert!(r.phase("nonexistent").is_none());
    }

    #[test]
    fn peak_phase_carries_more_traffic_than_night() {
        let s = WorkloadSchedule::diurnal();
        let r = run_schedule(
            &mut EePstateController::default(),
            &s,
            SimTuning::default(),
            PowerModel::default(),
            5,
        );
        let night = r.phase("night").unwrap();
        let peak = r.phase("peak").unwrap();
        assert!(peak.mean_throughput_gbps > night.mean_throughput_gbps);
    }

    #[test]
    fn adaptive_pstate_saves_energy_at_night_vs_baseline() {
        // The DES-driven EE-Pstate drops frequency when the load falls;
        // the baseline burns max frequency around the clock.
        let s = WorkloadSchedule::diurnal();
        let base = run_schedule(
            &mut BaselineController,
            &s,
            SimTuning::default(),
            PowerModel::default(),
            7,
        );
        let ee = run_schedule(
            &mut EePstateController::default(),
            &s,
            SimTuning::default(),
            PowerModel::default(),
            7,
        );
        let b_night = base.phase("night").unwrap().mean_energy_j;
        let e_night = ee.phase("night").unwrap().mean_energy_j;
        assert!(
            e_night < 0.9 * b_night,
            "EE-Pstate at night {e_night} vs baseline {b_night}"
        );
    }

    #[test]
    fn flash_crowd_spike_is_visible_in_trace() {
        let s = WorkloadSchedule::flash_crowd();
        let r = run_schedule(
            &mut EePstateController::default(),
            &s,
            SimTuning::default(),
            PowerModel::default(),
            9,
        );
        let steady = r.phase("steady").unwrap().mean_throughput_gbps;
        // The spike is ON/OFF: whole epochs can be silent, so compare the
        // busiest spike epoch (trace[8..14] = the spike phase) to steady.
        let spike_peak = r.trace[8..14]
            .iter()
            .map(|e| e.throughput_gbps)
            .fold(0.0f64, f64::max);
        assert!(
            spike_peak > 1.2 * steady,
            "spike peak {spike_peak} vs steady {steady}"
        );
    }
}

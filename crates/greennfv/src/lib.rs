//! # greennfv — energy-efficient NFV resource scheduling under SLAs
//!
//! Rust reproduction of *GreenNFV: Energy-Efficient Network Function
//! Virtualization with Service Level Agreement Constraints* (SC 2023).

#![warn(missing_docs)]

pub mod action;
pub mod apex;
pub mod baseline;
pub mod controller;
pub mod dag;
pub mod dqnmodel;
pub mod eepstate;
pub mod envs;
pub mod flowstats;
pub mod heuristic;
pub mod placement;
pub mod qmodel;
pub mod report;
pub mod scenario;
pub mod sla;
pub mod train;

/// Common imports.
pub mod prelude {
    pub use crate::action::{ActionSpace, ACTION_DIM};
    pub use crate::apex::{train_apex, ApexConfig, ApexOutcome};
    pub use crate::baseline::BaselineController;
    pub use crate::controller::{
        run_controller, telemetry_to_state, telemetry_to_state_scaled, Controller, EpochTrace,
        PolicyController, RunConfig, RunResult,
    };
    pub use crate::dag::{
        scenario_experiment_names, DagDriver, DagRunReport, Experiment, ExperimentDag,
        ExperimentOutput, ExperimentRun, ExperimentSpec, FigureRow, FigureTable, RunAction,
        ScenarioPatch,
    };
    pub use crate::dqnmodel::{train_dqn, DqnModelController};
    pub use crate::eepstate::{DesPredictor, EePstateController};
    pub use crate::envs::{
        energy_scale, EnvCheckpoint, EnvConfig, GreenNfvEnv, SweepOutcome, STATE_DIM,
    };
    pub use crate::flowstats::{FlowAnalyzer, RateClass, TrafficPattern};
    pub use crate::heuristic::HeuristicController;
    pub use crate::placement::{
        evaluate_placement, place, ChainRequest, Placement, PlacementEval, PlacementStrategy,
    };
    pub use crate::qmodel::{train_qlearning, QModelController};
    pub use crate::report::{scenario_comparison, table, AmortizationCurve, ComparisonReport};
    pub use crate::scenario::fuzz::{corpus, fuzz_scenario, fuzz_scenario_shaped, FuzzShape};
    pub use crate::scenario::{
        run_schedule, NodeSpec, PhaseSummary, Scenario, ScenarioRunResult, ScheduleResult,
        TenantEpochRecord, TenantSpec, TenantSummary, TrafficSpec, WorkloadPhase, WorkloadSchedule,
    };
    pub use crate::sla::{
        reward, reward_scaled, tenant_reward_scaled, RewardShaping, Sla, TenantSla,
        DEFAULT_ENERGY_SCALE_J,
    };
    pub use crate::train::{
        resume_from, resume_resumable, train, train_resumable, train_with_env_config, EvalPoint,
        TrainCheckpoint, TrainConfig, TrainOutcome, TrainSession,
    };
}

//! The GreenNFV reinforcement-learning environment over the NFV simulator.
//!
//! State (paper Eq. 8): per-chain throughput `T`, energy `E`, CPU utilization
//! `ξ`, and packet arrival rate `Ω`, normalized to order 1. Action (Eq. 7):
//! the five knobs, normalized to `[-1, 1]`.

use greennfv_rl::env::{Environment, Step};
use nfv_sim::prelude::*;
use serde::{Deserialize, Serialize};

use crate::action::{ActionSpace, ACTION_DIM};
use crate::scenario::TenantSpec;
use crate::sla::{reward_scaled, tenant_reward_scaled, RewardShaping, Sla, TenantSla};

/// Dimension of the observation vector.
pub const STATE_DIM: usize = 4;

/// Normalization constants for the observation.
const T_SCALE: f64 = 10.0; // Gbps
const OMEGA_SCALE: f64 = 5.0e6; // pps

/// Environment configuration. Serializable so a training checkpoint can
/// carry everything needed to rebuild its environments from scratch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnvConfig {
    /// Optimization goal of the controlled tenant.
    pub sla: Sla,
    /// Constraint-violation reward scheme of the controlled tenant.
    pub shaping: RewardShaping,
    /// Optional loss ceiling on the controlled tenant (per-tenant shaping:
    /// epochs losing more than this fraction are penalized like any other
    /// constraint violation).
    pub max_loss_frac: Option<f64>,
    /// Background tenants co-resident on the node. Each holds fixed knobs
    /// (consuming cores and cache ways) and is scored per epoch against its
    /// own [`TenantSla`] on its own attributed energy; the step reward
    /// becomes the weight-normalized mean over all tenants. Empty =
    /// single-tenant environment, byte-identical to the pre-tenant behavior.
    pub background: Vec<TenantSpec>,
    /// Knob ranges.
    pub action_space: ActionSpace,
    /// Control epochs per episode.
    pub steps_per_episode: u32,
    /// Offered workload of the controlled tenant.
    pub flows: FlowSet,
    /// Service chain under control.
    pub chain: ChainSpec,
    /// Simulator model constants.
    pub tuning: SimTuning,
    /// Power model.
    pub power: PowerModel,
    /// RNG seed (traffic).
    pub seed: u64,
}

impl EnvConfig {
    /// The paper's evaluation setup: canonical 3-NF chain, five flows.
    pub fn paper(sla: Sla, seed: u64) -> Self {
        Self {
            sla,
            shaping: RewardShaping::Shaped,
            max_loss_frac: None,
            background: Vec::new(),
            action_space: ActionSpace::default(),
            steps_per_episode: 8,
            flows: FlowSet::evaluation_five_flows(),
            chain: ChainSpec::canonical_three(ChainId(0)),
            tuning: SimTuning::default(),
            power: PowerModel::default(),
            seed,
        }
    }

    /// The controlled tenant's full agreement (goal + shaping + loss cap).
    pub fn controlled_sla(&self) -> TenantSla {
        TenantSla {
            sla: self.sla,
            shaping: self.shaping,
            max_loss_frac: self.max_loss_frac,
            weight: 1.0,
        }
    }
}

/// RL environment wrapping one GreenNFV-managed node hosting one chain.
pub struct GreenNfvEnv {
    cfg: EnvConfig,
    node: Node,
    steps: u32,
    episodes: u64,
    last_state: [f64; STATE_DIM],
    last_report: Option<NodeEpochReport>,
    cumulative_energy_j: f64,
    sla_violations: u64,
    total_steps: u64,
    energy_scale_j: f64,
    // What-if sweep cache: lanes and kernel outputs persist across
    // `sweep_candidates` calls so only candidates whose knobs (or the
    // observed load) actually moved re-enter the kernel. Pure memoization —
    // never checkpointed; a resumed environment simply re-primes on its
    // first sweep.
    sweep_batch: ChainBatch,
    sweep_outputs: BatchOutputs,
}

impl GreenNfvEnv {
    /// Builds the environment (the node starts under default tuned knobs).
    pub fn new(cfg: EnvConfig) -> Self {
        let node = Self::build_node(&cfg, cfg.seed);
        let energy_scale_j = energy_scale(&cfg);
        Self {
            cfg,
            node,
            steps: 0,
            episodes: 0,
            last_state: [0.0; STATE_DIM],
            last_report: None,
            cumulative_energy_j: 0.0,
            sla_violations: 0,
            total_steps: 0,
            energy_scale_j,
            sweep_batch: ChainBatch::new(),
            sweep_outputs: BatchOutputs::new(),
        }
    }

    fn build_node(cfg: &EnvConfig, seed: u64) -> Node {
        let mut node = Node::new(0, cfg.tuning, cfg.power, PlatformPolicy::greennfv());
        node.add_chain(
            cfg.chain.clone(),
            cfg.flows.clone(),
            KnobSettings::default_tuned(),
            seed,
        )
        .expect("default knobs fit a fresh node");
        for (i, tenant) in cfg.background.iter().enumerate() {
            let chain = ChainSpec::new(ChainId(1 + i as u32), tenant.nfs.clone())
                .expect("background tenant chains are non-empty");
            let source = tenant
                .traffic
                .build_source(seed.wrapping_add(7919 * (1 + i as u64)))
                .expect("background tenant traffic is valid");
            node.add_chain_with_source(chain, source, tenant.knobs)
                .expect("background tenant knobs fit next to the controlled chain");
        }
        node
    }

    /// True when background tenants share the node with the controlled
    /// chain. Multi-tenant environments cannot run batched what-if sweeps
    /// ([`Node::evaluate_candidates`] needs a single-chain node), so sweep
    /// users (Ape-X actors, the post-training lattice probe) must skip them.
    pub fn is_multi_tenant(&self) -> bool {
        !self.cfg.background.is_empty()
    }

    /// Environment configuration.
    pub fn config(&self) -> &EnvConfig {
        &self.cfg
    }

    /// Last epoch's full report (knob telemetry for the training figures).
    pub fn last_report(&self) -> Option<&NodeEpochReport> {
        self.last_report.as_ref()
    }

    /// Current knobs on the controlled chain.
    pub fn knobs(&self) -> KnobSettings {
        self.node
            .knobs(ChainId(0))
            .expect("chain installed at construction")
    }

    /// Total energy consumed by the node across all epochs so far (the `E_t`
    /// term of the paper's Eq. 9 training-amortization analysis).
    pub fn cumulative_energy_j(&self) -> f64 {
        self.cumulative_energy_j
    }

    /// Number of steps whose outcome violated the SLA.
    pub fn sla_violations(&self) -> u64 {
        self.sla_violations
    }

    /// Total environment steps taken.
    pub fn total_steps(&self) -> u64 {
        self.total_steps
    }

    /// Applies explicit knob settings and runs one epoch, bypassing the
    /// normalized action path (used by the non-RL controllers).
    ///
    /// Single-tenant environments score the controlled chain's throughput
    /// against node-level energy (the paper's formulation). With background
    /// tenants, the reward is the weight-normalized mean of every tenant's
    /// [`tenant_reward_scaled`] on its own attributed energy — per-tenant
    /// reward shaping — and violations count the *controlled* tenant's
    /// agreement (including its optional loss ceiling).
    pub fn step_with_knobs(&mut self, knobs: KnobSettings) -> (ChainTelemetry, f64) {
        if self.node.set_knobs(ChainId(0), knobs).is_err() {
            // Invalid requests leave previous knobs in force.
        }
        let report = self.node.run_epoch();
        let t = report.telemetry[0];
        let energy = report.node.energy_j;
        self.cumulative_energy_j += energy;
        let (r, violated) = if self.cfg.background.is_empty() {
            let controlled = self.cfg.controlled_sla();
            let r = tenant_reward_scaled(
                &controlled,
                t.throughput_gbps,
                energy,
                t.loss_frac,
                self.energy_scale_j,
            );
            (
                r,
                !controlled.satisfied(t.throughput_gbps, energy, t.loss_frac),
            )
        } else {
            let controlled = self.cfg.controlled_sla();
            let mut acc = controlled.weight
                * tenant_reward_scaled(
                    &controlled,
                    t.throughput_gbps,
                    t.energy_j,
                    t.loss_frac,
                    self.energy_scale_j,
                );
            let mut weight_sum = controlled.weight;
            for (tenant, tel) in self.cfg.background.iter().zip(&report.telemetry[1..]) {
                acc += tenant.sla.weight
                    * tenant_reward_scaled(
                        &tenant.sla,
                        tel.throughput_gbps,
                        tel.energy_j,
                        tel.loss_frac,
                        self.energy_scale_j,
                    );
                weight_sum += tenant.sla.weight;
            }
            let violated = !controlled.satisfied(t.throughput_gbps, t.energy_j, t.loss_frac);
            (acc / weight_sum, violated)
        };
        if violated {
            self.sla_violations += 1;
        }
        self.total_steps += 1;
        self.last_state = Self::observe_scaled(&t, self.energy_scale_j);
        self.last_report = Some(report);
        (t, r)
    }

    fn observe_scaled(t: &ChainTelemetry, energy_scale_j: f64) -> [f64; STATE_DIM] {
        [
            t.throughput_gbps / T_SCALE,
            t.energy_j / energy_scale_j.max(1e-9),
            t.cpu_util,
            t.arrival_pps / OMEGA_SCALE,
        ]
    }

    /// The offered load the sweep evaluates against: the last observed
    /// arrival rate (falling back to the configured mean before any epoch
    /// has run) with the workload's static packet-size/burstiness mix.
    fn sweep_load(&self) -> ChainLoad {
        let arrival_pps = self
            .last_report
            .as_ref()
            .map(|r| r.telemetry[0].arrival_pps)
            .unwrap_or_else(|| self.cfg.flows.total_rate_pps());
        ChainLoad {
            arrival_pps,
            mean_packet_size: self.cfg.flows.mean_packet_size(),
            burstiness: self.cfg.flows.burstiness(),
        }
    }

    /// Batched what-if step: evaluates every candidate knob setting from the
    /// current state — last observed load, committed allocations untouched —
    /// in one [`ChainBatch`] sweep, and scores
    /// each with the environment's reward. No state advances: traffic,
    /// knobs, energy, and step counters are exactly as before the call.
    ///
    /// The sweep is incrementally cached: the candidate lanes and their
    /// kernel outputs persist inside the environment, and only lanes whose
    /// knobs or observed load differ bitwise from the previous call are
    /// marked dirty and re-swept ([`Node::evaluate_candidates_into`]) —
    /// an Ape-X actor probing a slowly-drifting lattice around its policy
    /// re-runs only the candidates that moved. Results are bit-identical
    /// to an uncached sweep.
    ///
    /// This is the sweep-style rollout primitive: Ape-X actors use it to
    /// rank candidate actions before committing one, and the figure grids
    /// use the same path one level down on [`Node`].
    pub fn sweep_candidates(
        &mut self,
        candidates: &[KnobSettings],
    ) -> Vec<SimResult<SweepOutcome>> {
        let load = self.sweep_load();
        let swept = self
            .node
            .evaluate_candidates_into(
                ChainId(0),
                candidates,
                load,
                &mut self.sweep_batch,
                &mut self.sweep_outputs,
            )
            .expect("env nodes host exactly one chain");
        self.score_sweep(swept)
    }

    /// [`Self::sweep_candidates`] through a content-addressed
    /// [`EvalCache`]: the same what-if sweep, but lanes are keyed by their
    /// exact input bits and memoized across environments and runs —
    /// repeating the post-training lattice probe (or any fixed grid under
    /// a repeated load) costs zero kernel lanes on the warm pass. Results
    /// are bit-identical to [`Self::sweep_candidates`]; the environment's
    /// positional sweep memo is untouched.
    pub fn sweep_candidates_cached(
        &mut self,
        candidates: &[KnobSettings],
        cache: &EvalCache,
    ) -> Vec<SimResult<SweepOutcome>> {
        let load = self.sweep_load();
        let swept = self
            .node
            .evaluate_candidates_cached(ChainId(0), candidates, load, cache)
            .expect("env nodes host exactly one chain");
        self.score_sweep(swept)
    }

    /// Shared scoring tail of the sweep variants: each candidate's epoch
    /// result through the environment's scaled reward.
    fn score_sweep(&self, swept: Vec<SimResult<NodeEpochResult>>) -> Vec<SimResult<SweepOutcome>> {
        swept
            .into_iter()
            .map(|r| {
                r.map(|node| {
                    let chain = node.chains[0];
                    let reward = reward_scaled(
                        self.cfg.sla,
                        self.cfg.shaping,
                        chain.throughput_gbps,
                        node.energy_j,
                        self.energy_scale_j,
                    );
                    SweepOutcome {
                        chain,
                        energy_j: node.energy_j,
                        reward,
                    }
                })
            })
            .collect()
    }

    /// [`Self::sweep_candidates`] over normalized actions: each action is
    /// decoded through the environment's [`ActionSpace`] first.
    pub fn sweep_actions(&mut self, actions: &[Vec<f64>]) -> Vec<SimResult<SweepOutcome>> {
        let knobs: Vec<KnobSettings> = actions
            .iter()
            .map(|a| self.cfg.action_space.decode(a))
            .collect();
        self.sweep_candidates(&knobs)
    }

    /// Serializable snapshot of the whole environment: the config (to
    /// rebuild the node) plus every piece of mutable drift (knobs, traffic
    /// RNG streams and trace cursors, episode/step counters, telemetry).
    /// Restore with [`GreenNfvEnv::from_checkpoint`]; the restored twin
    /// steps bit-identically to the original from the snapshot point on.
    pub fn checkpoint(&self) -> EnvCheckpoint {
        EnvCheckpoint {
            cfg: self.cfg.clone(),
            node: self.node.cursor(),
            steps: self.steps,
            episodes: self.episodes,
            last_state: self.last_state,
            last_report: self.last_report.clone(),
            cumulative_energy_j: self.cumulative_energy_j,
            sla_violations: self.sla_violations,
            total_steps: self.total_steps,
        }
    }

    /// Rebuilds an environment from a [`GreenNfvEnv::checkpoint`] snapshot:
    /// the node is reconstructed from the config (validated allocator path),
    /// then every stream is restored to its captured position.
    pub fn from_checkpoint(ck: EnvCheckpoint) -> SimResult<Self> {
        let mut env = Self::new(ck.cfg);
        env.node.restore_cursor(&ck.node)?;
        env.steps = ck.steps;
        env.episodes = ck.episodes;
        env.last_state = ck.last_state;
        env.last_report = ck.last_report;
        env.cumulative_energy_j = ck.cumulative_energy_j;
        env.sla_violations = ck.sla_violations;
        env.total_steps = ck.total_steps;
        Ok(env)
    }
}

/// Serializable snapshot of a [`GreenNfvEnv`] (see
/// [`GreenNfvEnv::checkpoint`]): part of [`crate::train::TrainCheckpoint`],
/// the unit of resumable training.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnvCheckpoint {
    /// Environment configuration (rebuilds the node and its chains).
    pub cfg: EnvConfig,
    /// Mutable node drift: knobs, traffic cursors, epoch counter.
    pub node: NodeCursor,
    /// Steps into the current episode.
    pub steps: u32,
    /// Episodes started so far.
    pub episodes: u64,
    /// Last observed (normalized) state.
    pub last_state: [f64; STATE_DIM],
    /// Last epoch's full report (feeds what-if sweeps).
    pub last_report: Option<NodeEpochReport>,
    /// Total energy consumed so far (Eq. 9's `E_t`).
    pub cumulative_energy_j: f64,
    /// SLA-violation count.
    pub sla_violations: u64,
    /// Total environment steps taken.
    pub total_steps: u64,
}

/// One lane of a batched what-if sweep: the candidate's chain outcome,
/// node-level energy, and the reward the environment would have paid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepOutcome {
    /// Chain-level engine result under the candidate knobs.
    pub chain: ChainEpochResult,
    /// Node-level epoch energy (joules) under the candidate knobs.
    pub energy_j: f64,
    /// Environment reward for this outcome.
    pub reward: f64,
}

/// Energy normalization for an environment configuration: the node's maximum
/// possible energy per control epoch, times a small margin.
pub fn energy_scale(cfg: &EnvConfig) -> f64 {
    cfg.power.pmax_w * cfg.tuning.epoch_s
}

impl Environment for GreenNfvEnv {
    fn state_dim(&self) -> usize {
        STATE_DIM
    }

    fn action_dim(&self) -> usize {
        ACTION_DIM
    }

    fn reset(&mut self) -> Vec<f64> {
        self.steps = 0;
        self.episodes += 1;
        // Observe one epoch under the current knobs to seed the state.
        let report = self.node.run_epoch();
        self.cumulative_energy_j += report.node.energy_j;
        self.last_state = Self::observe_scaled(&report.telemetry[0], self.energy_scale_j);
        self.last_report = Some(report);
        self.last_state.to_vec()
    }

    fn step(&mut self, action: &[f64]) -> Step {
        let knobs = self.cfg.action_space.decode(action);
        let (t, r) = self.step_with_knobs(knobs);
        self.steps += 1;
        let _ = t;
        Step {
            next_state: self.last_state.to_vec(),
            reward: r,
            done: self.steps >= self.cfg.steps_per_episode,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::TrafficSpec;
    use crate::sla::Sla;

    fn env(sla: Sla) -> GreenNfvEnv {
        GreenNfvEnv::new(EnvConfig::paper(sla, 42))
    }

    #[test]
    fn dimensions_match_paper() {
        let e = env(Sla::EnergyEfficiency);
        assert_eq!(e.state_dim(), 4);
        assert_eq!(e.action_dim(), 5);
    }

    #[test]
    fn reset_returns_normalized_state() {
        let mut e = env(Sla::EnergyEfficiency);
        let s = e.reset();
        assert_eq!(s.len(), STATE_DIM);
        assert!(s.iter().all(|x| x.is_finite()));
        assert!(s[0] > 0.0 && s[0] < 1.5, "throughput norm {}", s[0]);
        assert!(s[2] >= 0.0 && s[2] <= 1.0, "cpu util {}", s[2]);
    }

    #[test]
    fn episode_terminates_at_configured_length() {
        let mut e = env(Sla::EnergyEfficiency);
        e.reset();
        let mut dones = 0;
        for i in 1..=16 {
            let s = e.step(&[0.0; 5]);
            if s.done {
                dones += 1;
                assert_eq!(i % 8, 0, "episodes are 8 steps");
                e.reset();
            }
        }
        assert_eq!(dones, 2);
    }

    #[test]
    fn better_knobs_earn_better_maxt_reward() {
        let mut e = env(Sla::MaxThroughput {
            energy_cap_j: 2500.0,
        });
        e.reset();
        // Weak configuration: minimum everything.
        let weak = e.step(&[-1.0, -1.0, -1.0, -1.0, -1.0]).reward;
        // Strong configuration: high CPU/LLC/DMA, moderate frequency, big batch.
        let strong = e.step(&[0.8, 0.2, 0.9, 0.2, 0.5]).reward;
        assert!(strong > weak, "strong {strong} must beat weak {weak}");
    }

    #[test]
    fn energy_cap_violations_are_counted() {
        let mut e = env(Sla::MaxThroughput {
            energy_cap_j: 100.0,
        }); // impossible cap
        e.reset();
        e.step(&[1.0; 5]);
        assert!(e.sla_violations() > 0);
    }

    #[test]
    fn cumulative_energy_grows_monotonically() {
        let mut e = env(Sla::EnergyEfficiency);
        e.reset();
        let e1 = e.cumulative_energy_j();
        e.step(&[0.0; 5]);
        let e2 = e.cumulative_energy_j();
        assert!(e2 > e1);
        assert!(e1 > 0.0, "reset epoch consumes energy too");
    }

    #[test]
    fn step_with_knobs_applies_settings() {
        let mut e = env(Sla::EnergyEfficiency);
        e.reset();
        let mut k = KnobSettings::default_tuned();
        k.batch = 128;
        k.freq_ghz = 1.5;
        e.step_with_knobs(k);
        let applied = e.knobs();
        assert_eq!(applied.batch, 128);
        assert!((applied.freq_ghz - 1.5).abs() < 1e-9);
    }

    #[test]
    fn sweep_is_side_effect_free_and_ranks_candidates() {
        let mut e = env(Sla::EnergyEfficiency);
        e.reset();
        let steps_before = e.total_steps();
        let energy_before = e.cumulative_energy_j();
        let knobs_before = e.knobs();

        let weak = e.config().action_space.decode(&[-1.0; 5]);
        let strong = e.config().action_space.decode(&[0.8, 0.2, 0.9, 0.2, 0.5]);
        let mut invalid = strong;
        invalid.batch = 0;
        let out = e.sweep_candidates(&[weak, strong, invalid]);

        assert_eq!(out.len(), 3);
        let weak_r = out[0].as_ref().unwrap().reward;
        let strong_r = out[1].as_ref().unwrap().reward;
        assert!(
            strong_r > weak_r,
            "strong {strong_r} must beat weak {weak_r}"
        );
        assert!(out[2].is_err(), "invalid knobs surface as error lanes");

        assert_eq!(e.total_steps(), steps_before);
        assert_eq!(e.cumulative_energy_j(), energy_before);
        assert_eq!(e.knobs(), knobs_before);
    }

    #[test]
    fn repeated_sweeps_hit_the_lane_cache() {
        // Sweeping the same lattice from the same state twice must return
        // identical outcomes without re-entering the kernel at all — the
        // persistent sweep batch recognizes every lane as clean.
        let mut e = env(Sla::EnergyEfficiency);
        e.reset();
        let grid: Vec<KnobSettings> = (0..6)
            .map(|i| {
                let mut k = KnobSettings::default_tuned();
                k.batch = 16 + i * 24;
                k
            })
            .collect();
        let first = e.sweep_candidates(&grid);
        let lanes_before = kernel_lanes_swept();
        let second = e.sweep_candidates(&grid);
        assert_eq!(
            kernel_lanes_swept(),
            lanes_before,
            "identical repeat sweep must re-run zero kernel lanes"
        );
        assert_eq!(first, second);
        // Advancing the environment changes the observed load, which
        // dirties every lane — and the cached path must still agree with a
        // fresh environment's uncached sweep.
        e.step(&[0.2, -0.1, 0.4, 0.0, 0.3]);
        let moved = e.sweep_candidates(&grid);
        assert!(kernel_lanes_swept() > lanes_before);
        let mut fresh = env(Sla::EnergyEfficiency);
        fresh.reset();
        fresh.step(&[0.2, -0.1, 0.4, 0.0, 0.3]);
        assert_eq!(moved, fresh.sweep_candidates(&grid));
    }

    #[test]
    fn sweep_actions_decodes_like_step() {
        let mut e = env(Sla::EnergyEfficiency);
        e.reset();
        let action = vec![0.3, -0.2, 0.5, 0.0, 0.1];
        let sweep = e.sweep_actions(std::slice::from_ref(&action));
        let outcome = sweep[0].as_ref().unwrap();
        assert!(outcome.chain.throughput_gbps > 0.0);
        assert!(outcome.energy_j > 0.0);
        assert!(outcome.reward.is_finite());
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = env(Sla::EnergyEfficiency);
        let mut b = env(Sla::EnergyEfficiency);
        assert_eq!(a.reset(), b.reset());
        for _ in 0..4 {
            let sa = a.step(&[0.3, -0.2, 0.5, 0.0, 0.1]);
            let sb = b.step(&[0.3, -0.2, 0.5, 0.0, 0.1]);
            assert_eq!(sa, sb);
        }
    }

    fn background_tenant(weight: f64) -> TenantSpec {
        let mut knobs = KnobSettings::default_tuned();
        knobs.llc_fraction = 0.2;
        knobs.cpu = CpuAllocation {
            cores: 2,
            share: 1.0,
        };
        TenantSpec {
            name: "colo".into(),
            nfs: ChainSpec::lightweight(ChainId(0)).nfs,
            sla: TenantSla::new(Sla::EnergyEfficiency)
                .with_loss_cap(0.1)
                .with_weight(weight),
            knobs,
            traffic: TrafficSpec::Flows(
                FlowSet::new(vec![FlowSpec::poisson(0, 5.0e5, 256)]).unwrap(),
            ),
        }
    }

    fn multi_tenant_env(seed: u64) -> GreenNfvEnv {
        let mut cfg = EnvConfig::paper(Sla::EnergyEfficiency, seed);
        cfg.background = vec![background_tenant(1.0)];
        GreenNfvEnv::new(cfg)
    }

    #[test]
    fn background_tenants_share_the_node() {
        let mut e = multi_tenant_env(11);
        assert!(e.is_multi_tenant());
        assert!(!env(Sla::EnergyEfficiency).is_multi_tenant());
        e.reset();
        let report = e.last_report().unwrap();
        assert_eq!(report.telemetry.len(), 2, "controlled + background chain");
        assert!(report.telemetry[1].throughput_gbps > 0.0);
        // Attributed energies still sum to the node's.
        let sum: f64 = report.telemetry.iter().map(|t| t.energy_j).sum();
        assert!((sum - report.node.energy_j).abs() < 1e-6);
    }

    #[test]
    fn multi_tenant_reward_mixes_per_tenant_shaping() {
        // Raising the background tenant's weight must move the step reward
        // toward that tenant's score — the per-tenant shaping at work.
        let step_reward = |weight: f64| {
            let mut cfg = EnvConfig::paper(Sla::EnergyEfficiency, 11);
            cfg.background = vec![background_tenant(weight)];
            let mut e = GreenNfvEnv::new(cfg);
            e.reset();
            e.step(&[0.3, -0.2, 0.5, 0.0, 0.1]).reward
        };
        let light = step_reward(0.25);
        let heavy = step_reward(16.0);
        assert!(
            (light - heavy).abs() > 1e-9,
            "weights must matter: light {light}, heavy {heavy}"
        );
    }

    #[test]
    fn multi_tenant_runs_are_deterministic() {
        let mut a = multi_tenant_env(5);
        let mut b = multi_tenant_env(5);
        assert_eq!(a.reset(), b.reset());
        for _ in 0..4 {
            assert_eq!(a.step(&[0.1; 5]), b.step(&[0.1; 5]));
        }
    }

    #[test]
    fn checkpoint_restores_env_bit_exactly() {
        // Single- and multi-tenant environments, snapshotted mid-episode
        // through JSON, must step identically to the live original.
        for mut live in [env(Sla::EnergyEfficiency), multi_tenant_env(23)] {
            live.reset();
            live.step(&[0.3, -0.2, 0.5, 0.0, 0.1]);
            live.step(&[-0.5, 0.9, 0.0, 0.2, -0.8]);
            let json = serde_json::to_string(&live.checkpoint()).unwrap();
            let mut resumed =
                GreenNfvEnv::from_checkpoint(serde_json::from_str(&json).unwrap()).unwrap();
            assert_eq!(resumed.knobs(), live.knobs());
            assert_eq!(resumed.total_steps(), live.total_steps());
            assert_eq!(resumed.cumulative_energy_j(), live.cumulative_energy_j());
            assert_eq!(resumed.last_report(), live.last_report());
            for i in 0..6 {
                let a = [0.1 * f64::from(i) - 0.2; 5];
                assert_eq!(live.step(&a), resumed.step(&a), "step {i}");
            }
            assert_eq!(live.reset(), resumed.reset(), "post-episode reset");
        }
    }

    #[test]
    fn controlled_loss_cap_counts_violations() {
        // An impossible loss ceiling flags every epoch without changing the
        // environment's dynamics.
        let mut cfg = EnvConfig::paper(Sla::EnergyEfficiency, 3);
        cfg.max_loss_frac = Some(0.0);
        let mut e = GreenNfvEnv::new(cfg);
        e.reset();
        // Overload the node (weak knobs) so some packets are lost.
        e.step(&[-1.0; 5]);
        assert!(e.sla_violations() > 0, "zero-loss ceiling must trip");
    }
}

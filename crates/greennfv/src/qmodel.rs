//! Q-learning comparison model: GreenNFV's control loop with a discretized
//! tabular agent instead of DDPG (paper §5: "For the Q-learning model, we
//! discretize the action and state space").

use greennfv_rl::env::Environment;
use greennfv_rl::qlearning::{Discretizer, QLearning};
use nfv_sim::prelude::*;

use crate::action::ActionSpace;
use crate::controller::{telemetry_to_state, Controller};
use crate::envs::{EnvConfig, GreenNfvEnv, STATE_DIM};
use crate::sla::Sla;

/// Levels per state dimension (coarse by necessity — the paper's point).
pub const STATE_LEVELS: usize = 4;
/// Levels per action dimension: 3^5 = 243 discrete actions.
pub const ACTION_LEVELS: usize = 3;

/// Builds the discretizers over the paper's state/action spaces.
pub fn discretizers(space: &ActionSpace) -> (Discretizer, Discretizer) {
    let state = Discretizer::new(vec![0.0; STATE_DIM], vec![1.2; STATE_DIM], STATE_LEVELS);
    let (lo, hi) = space.bounds();
    let action = Discretizer::new(lo, hi, ACTION_LEVELS);
    (state, action)
}

/// Trains a tabular Q-learning agent on the GreenNFV environment.
///
/// Returns the trained agent and the total energy consumed while training.
pub fn train_qlearning(sla: Sla, episodes: u32, seed: u64) -> (QLearning, f64) {
    let cfg = EnvConfig::paper(sla, seed);
    let space = cfg.action_space;
    let mut env = GreenNfvEnv::new(cfg);
    let (sd, ad) = discretizers(&space);
    let mut agent = QLearning::new(sd, ad, seed.wrapping_add(1));
    agent.epsilon = 0.4;
    for ep in 0..episodes {
        // Decay exploration linearly to 5%.
        agent.epsilon = (0.4 * (1.0 - f64::from(ep) / f64::from(episodes.max(1)))).max(0.05);
        let mut state = env.reset();
        for _ in 0..env.config().steps_per_episode {
            let physical = agent.act(&state);
            let knobs = space.decode_physical(&physical);
            let (t, r) = env.step_with_knobs(knobs);
            let next_state = telemetry_to_state(&t).to_vec();
            // Continuing control task: no terminal bootstrapping cut-off.
            agent.learn(&state, &physical, r, &next_state, false);
            state = next_state;
        }
    }
    (agent, env.cumulative_energy_j())
}

/// A trained Q-learning agent deployed as a controller.
#[derive(Debug)]
pub struct QModelController {
    agent: QLearning,
    space: ActionSpace,
}

impl QModelController {
    /// Wraps a trained agent.
    pub fn new(agent: QLearning, space: ActionSpace) -> Self {
        Self { agent, space }
    }

    /// Trains a fresh agent and wraps it.
    pub fn trained(sla: Sla, episodes: u32, seed: u64) -> Self {
        let (agent, _) = train_qlearning(sla, episodes, seed);
        Self::new(agent, ActionSpace::default())
    }
}

impl Controller for QModelController {
    fn name(&self) -> &'static str {
        "Q-Learning"
    }

    fn platform(&self) -> PlatformPolicy {
        PlatformPolicy::greennfv()
    }

    fn initial_knobs(&self, _flows: &FlowSet) -> KnobSettings {
        KnobSettings::default_tuned()
    }

    fn decide(&mut self, telemetry: &ChainTelemetry, _current: &KnobSettings) -> KnobSettings {
        let state = telemetry_to_state(telemetry);
        let physical = self.agent.act_greedy(&state);
        self.space.decode_physical(&physical)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::BaselineController;
    use crate::controller::{run_controller, RunConfig};

    #[test]
    fn discretizers_cover_paper_complexity() {
        let (sd, ad) = discretizers(&ActionSpace::default());
        assert_eq!(sd.cells(), (STATE_LEVELS as u64).pow(4));
        // O(k^5) action cells, the complexity the paper criticizes.
        assert_eq!(ad.cells(), (ACTION_LEVELS as u64).pow(5));
    }

    #[test]
    fn training_populates_table_and_consumes_energy() {
        let (agent, energy) = train_qlearning(Sla::EnergyEfficiency, 20, 9);
        assert!(agent.table_size() > 10, "table {}", agent.table_size());
        assert!(energy > 0.0);
    }

    #[test]
    fn trained_qmodel_beats_baseline() {
        let mut q = QModelController::trained(Sla::EnergyEfficiency, 150, 11);
        let cfg = RunConfig::paper(20, 13);
        let base = run_controller(&mut BaselineController, &cfg);
        let qr = run_controller(&mut q, &cfg);
        assert!(
            qr.mean_throughput_gbps > base.mean_throughput_gbps,
            "q {} vs baseline {}",
            qr.mean_throughput_gbps,
            base.mean_throughput_gbps
        );
    }

    #[test]
    fn decide_produces_valid_knobs() {
        let (sd, ad) = discretizers(&ActionSpace::default());
        let agent = QLearning::new(sd, ad, 3);
        let mut c = QModelController::new(agent, ActionSpace::default());
        let t = ChainTelemetry {
            throughput_gbps: 3.0,
            energy_j: 2000.0,
            cpu_util: 0.5,
            arrival_pps: 3e6,
            miss_rate: 0.2,
            loss_frac: 0.1,
        };
        let k = c.decide(&t, &KnobSettings::default_tuned());
        assert!(k.validate().is_ok());
    }
}

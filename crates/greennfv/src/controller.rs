//! Controller abstraction and the epoch-loop runner used by the evaluation
//! (Figures 9 and 10): every model — baseline, heuristics, EE-Pstate,
//! Q-learning, and trained GreenNFV policies — plugs in here.

use greennfv_nn::prelude::Mlp;
use nfv_sim::prelude::*;
use serde::{Deserialize, Serialize};

use crate::action::ActionSpace;
use crate::envs::STATE_DIM;

/// A resource-scheduling controller: observes last-epoch telemetry and picks
/// next-epoch knob settings.
pub trait Controller {
    /// Display name for reports.
    fn name(&self) -> &'static str;
    /// Platform policy the controller requires (poll mode, core power-off).
    fn platform(&self) -> PlatformPolicy;
    /// Knobs to apply before the first epoch.
    fn initial_knobs(&self, flows: &FlowSet) -> KnobSettings;
    /// Next-epoch knobs from last-epoch telemetry.
    fn decide(&mut self, telemetry: &ChainTelemetry, current: &KnobSettings) -> KnobSettings;
}

/// Normalizes chain telemetry into the paper's Eq. 8 state vector, with the
/// default 30 s-epoch energy scale.
pub fn telemetry_to_state(t: &ChainTelemetry) -> [f64; STATE_DIM] {
    telemetry_to_state_scaled(t, crate::sla::DEFAULT_ENERGY_SCALE_J)
}

/// Normalizes chain telemetry with an explicit energy scale (the same one
/// the policy saw during training).
pub fn telemetry_to_state_scaled(t: &ChainTelemetry, energy_scale_j: f64) -> [f64; STATE_DIM] {
    [
        t.throughput_gbps / 10.0,
        t.energy_j / energy_scale_j.max(1e-9),
        t.cpu_util,
        t.arrival_pps / 5.0e6,
    ]
}

/// Configuration of an evaluation run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Number of control epochs.
    pub epochs: u32,
    /// Offered workload.
    pub flows: FlowSet,
    /// Chain under control.
    pub chain: ChainSpec,
    /// Simulator constants.
    pub tuning: SimTuning,
    /// Power model.
    pub power: PowerModel,
    /// Traffic seed.
    pub seed: u64,
}

impl RunConfig {
    /// The paper's evaluation workload over `epochs` epochs.
    pub fn paper(epochs: u32, seed: u64) -> Self {
        Self {
            epochs,
            flows: FlowSet::evaluation_five_flows(),
            chain: ChainSpec::canonical_three(ChainId(0)),
            tuning: SimTuning::default(),
            power: PowerModel::default(),
            seed,
        }
    }
}

/// Per-epoch trace entry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochTrace {
    /// Delivered throughput, Gbps.
    pub throughput_gbps: f64,
    /// Node energy, joules.
    pub energy_j: f64,
    /// CPU utilization of the chain allocation.
    pub cpu_util: f64,
    /// Applied knobs.
    pub knobs: KnobSettings,
}

/// Result of an evaluation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Controller name.
    pub name: String,
    /// Mean delivered throughput, Gbps.
    pub mean_throughput_gbps: f64,
    /// Mean epoch energy, joules.
    pub mean_energy_j: f64,
    /// Energy efficiency (Gbps per kJ).
    pub efficiency: f64,
    /// Full per-epoch trace.
    pub trace: Vec<EpochTrace>,
}

impl RunResult {
    /// Total energy over the run.
    pub fn total_energy_j(&self) -> f64 {
        self.trace.iter().map(|t| t.energy_j).sum()
    }
}

/// Runs a controller for `cfg.epochs` control epochs and aggregates results.
pub fn run_controller(ctrl: &mut dyn Controller, cfg: &RunConfig) -> RunResult {
    let mut node = Node::new(0, cfg.tuning, cfg.power, ctrl.platform());
    let mut knobs = ctrl.initial_knobs(&cfg.flows);
    node.add_chain(cfg.chain.clone(), cfg.flows.clone(), knobs, cfg.seed)
        .expect("initial knobs must fit a fresh node");
    let mut trace = Vec::with_capacity(cfg.epochs as usize);
    for _ in 0..cfg.epochs {
        let report = node.run_epoch();
        let t = report.telemetry[0];
        trace.push(EpochTrace {
            throughput_gbps: t.throughput_gbps,
            energy_j: report.node.energy_j,
            cpu_util: t.cpu_util,
            knobs,
        });
        let next = ctrl.decide(&t, &knobs);
        if node.set_knobs(ChainId(0), next).is_ok() {
            knobs = next;
        }
    }
    let n = trace.len().max(1) as f64;
    let mean_t = trace.iter().map(|e| e.throughput_gbps).sum::<f64>() / n;
    let mean_e = trace.iter().map(|e| e.energy_j).sum::<f64>() / n;
    RunResult {
        name: ctrl.name().to_string(),
        mean_throughput_gbps: mean_t,
        mean_energy_j: mean_e,
        efficiency: if mean_e > 0.0 {
            mean_t / (mean_e / 1000.0)
        } else {
            0.0
        },
        trace,
    }
}

/// A trained GreenNFV policy deployed as a controller: the ONVM controller
/// requests resource allocations from the actor network (paper Fig. 5).
#[derive(Debug)]
pub struct PolicyController {
    name: &'static str,
    actor: Mlp,
    space: ActionSpace,
    initial: KnobSettings,
    energy_scale_j: f64,
}

impl PolicyController {
    /// Wraps a trained actor network.
    pub fn new(name: &'static str, actor: Mlp, space: ActionSpace) -> Self {
        Self {
            name,
            actor,
            space,
            initial: KnobSettings::default_tuned(),
            energy_scale_j: crate::sla::DEFAULT_ENERGY_SCALE_J,
        }
    }

    /// Sets the energy normalization (must match the training environment
    /// when deploying policies trained at non-default epoch lengths).
    pub fn with_energy_scale(mut self, energy_scale_j: f64) -> Self {
        self.energy_scale_j = energy_scale_j;
        self
    }

    /// The underlying actor network.
    pub fn actor(&self) -> &Mlp {
        &self.actor
    }
}

impl Controller for PolicyController {
    fn name(&self) -> &'static str {
        self.name
    }

    fn platform(&self) -> PlatformPolicy {
        PlatformPolicy::greennfv()
    }

    fn initial_knobs(&self, _flows: &FlowSet) -> KnobSettings {
        self.initial
    }

    fn decide(&mut self, telemetry: &ChainTelemetry, _current: &KnobSettings) -> KnobSettings {
        let state = telemetry_to_state_scaled(telemetry, self.energy_scale_j);
        let action = self.actor.infer_one(&state);
        self.space.decode(&action)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greennfv_nn::prelude::Activation;

    struct FixedController(KnobSettings);
    impl Controller for FixedController {
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn platform(&self) -> PlatformPolicy {
            PlatformPolicy::greennfv()
        }
        fn initial_knobs(&self, _f: &FlowSet) -> KnobSettings {
            self.0
        }
        fn decide(&mut self, _t: &ChainTelemetry, c: &KnobSettings) -> KnobSettings {
            *c
        }
    }

    #[test]
    fn run_produces_full_trace_and_means() {
        let mut c = FixedController(KnobSettings::default_tuned());
        let r = run_controller(&mut c, &RunConfig::paper(5, 1));
        assert_eq!(r.trace.len(), 5);
        assert!(r.mean_throughput_gbps > 0.0);
        assert!(r.mean_energy_j > 0.0);
        assert!(r.efficiency > 0.0);
        assert!(
            (r.total_energy_j() - r.trace.iter().map(|t| t.energy_j).sum::<f64>()).abs() < 1e-9
        );
    }

    #[test]
    fn telemetry_state_is_normalized() {
        let t = ChainTelemetry {
            throughput_gbps: 5.0,
            energy_j: 2000.0,
            cpu_util: 0.7,
            arrival_pps: 2.5e6,
            miss_rate: 0.1,
            loss_frac: 0.0,
        };
        let s = telemetry_to_state(&t);
        assert_eq!(s, [0.5, 0.5, 0.7, 0.5]);
    }

    #[test]
    fn policy_controller_decides_valid_knobs() {
        let actor = Mlp::two_hidden(STATE_DIM, 16, 5, Activation::Tanh, 3);
        let mut pc = PolicyController::new("test-policy", actor, ActionSpace::default());
        let r = run_controller(&mut pc, &RunConfig::paper(3, 2));
        assert_eq!(r.trace.len(), 3);
        for e in &r.trace {
            assert!(e.knobs.validate().is_ok());
        }
    }
}

//! Service level agreements and their reward signals (paper §4.1, Eq. 1–3).

use serde::{Deserialize, Serialize};

/// The three SLA-based optimization goals of GreenNFV.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Sla {
    /// Maximize throughput subject to an epoch energy cap (Eq. 1).
    MaxThroughput {
        /// Energy budget per control epoch, joules.
        energy_cap_j: f64,
    },
    /// Minimize energy subject to a throughput floor (Eq. 2).
    MinEnergy {
        /// Guaranteed throughput, Gbps.
        throughput_floor_gbps: f64,
    },
    /// Maximize energy efficiency λ = T / E (Eq. 3), unconstrained.
    EnergyEfficiency,
}

impl Sla {
    /// The paper's §5.1 configuration: 2000 J energy cap.
    pub fn paper_max_throughput() -> Self {
        Sla::MaxThroughput {
            energy_cap_j: 2000.0,
        }
    }

    /// The paper's §5.2 configuration: 7.5 Gbps floor.
    pub fn paper_min_energy() -> Self {
        Sla::MinEnergy {
            throughput_floor_gbps: 7.5,
        }
    }

    /// Short display name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Sla::MaxThroughput { .. } => "MaxT",
            Sla::MinEnergy { .. } => "MinE",
            Sla::EnergyEfficiency => "EE",
        }
    }

    /// Whether an epoch outcome satisfies the SLA constraint.
    pub fn satisfied(&self, throughput_gbps: f64, energy_j: f64) -> bool {
        match *self {
            Sla::MaxThroughput { energy_cap_j } => energy_j <= energy_cap_j,
            Sla::MinEnergy {
                throughput_floor_gbps,
            } => throughput_gbps >= throughput_floor_gbps,
            Sla::EnergyEfficiency => true,
        }
    }
}

/// How constraint violations are penalized in the reward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RewardShaping {
    /// The paper's scheme: zero reward on violation.
    Strict,
    /// Smoothly shaped: negative reward proportional to violation magnitude.
    /// Converges faster; compared against `Strict` in the ablation bench.
    Shaped,
}

/// Reward scales chosen so all three SLAs produce rewards of order 1.
const THROUGHPUT_SCALE_GBPS: f64 = 10.0;
/// Default reference epoch energy (≈ baseline platform at full tilt over a
/// 30 s epoch). Environments with other epoch lengths pass their own scale.
pub const DEFAULT_ENERGY_SCALE_J: f64 = 4000.0;

/// Computes the reward for an epoch outcome under an SLA, normalizing energy
/// by the default 30 s-epoch scale.
pub fn reward(sla: Sla, shaping: RewardShaping, throughput_gbps: f64, energy_j: f64) -> f64 {
    reward_scaled(
        sla,
        shaping,
        throughput_gbps,
        energy_j,
        DEFAULT_ENERGY_SCALE_J,
    )
}

/// Computes the reward with an explicit energy normalization scale
/// (≈ the node's maximum energy per control epoch).
pub fn reward_scaled(
    sla: Sla,
    shaping: RewardShaping,
    throughput_gbps: f64,
    energy_j: f64,
    energy_scale_j: f64,
) -> f64 {
    match sla {
        Sla::MaxThroughput { energy_cap_j } => {
            if energy_j <= energy_cap_j {
                throughput_gbps / THROUGHPUT_SCALE_GBPS
            } else {
                match shaping {
                    RewardShaping::Strict => 0.0,
                    RewardShaping::Shaped => -(((energy_j - energy_cap_j) / energy_cap_j).min(1.0)),
                }
            }
        }
        Sla::MinEnergy {
            throughput_floor_gbps,
        } => {
            if throughput_gbps >= throughput_floor_gbps {
                // More reward for less energy; the quadratic sharpens the
                // gradient toward the low-energy corner so the policy does
                // not idle at "comfortably above the floor" settings.
                let frugality = (1.0 - energy_j / energy_scale_j.max(1e-9)).max(0.0);
                2.0 * frugality * frugality + 0.2
            } else {
                match shaping {
                    RewardShaping::Strict => 0.0,
                    RewardShaping::Shaped => {
                        -(((throughput_floor_gbps - throughput_gbps) / throughput_floor_gbps)
                            .min(1.0))
                    }
                }
            }
        }
        Sla::EnergyEfficiency => {
            if energy_j <= 0.0 {
                0.0
            } else {
                // λ = T / E in Gbps per kJ; scale to order 1.
                (throughput_gbps / (energy_j / 1000.0)) / 5.0
            }
        }
    }
}

/// A tenant's full service agreement: one of the paper's optimization goals
/// plus an optional packet-loss ceiling, with per-tenant reward shaping and
/// a weight for combining multiple tenants sharing one node.
///
/// Multi-SLA tenancy is the scenario subsystem's second axis: several chains
/// with *different* agreements (say, a throughput-hungry tenant next to a
/// loss-sensitive one) compete for one node's cores and cache ways, and each
/// is scored against its own agreement on its own attributed energy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TenantSla {
    /// The tenant's optimization goal (Eq. 1–3).
    pub sla: Sla,
    /// How this tenant's constraint violations are penalized.
    pub shaping: RewardShaping,
    /// Optional loss ceiling: epochs losing more than this fraction of
    /// offered packets violate the agreement regardless of the goal.
    pub max_loss_frac: Option<f64>,
    /// Relative weight when combining tenants into one node-level reward.
    pub weight: f64,
}

impl TenantSla {
    /// A plain tenant agreement: `sla` with shaped penalties, no loss
    /// ceiling, unit weight.
    pub fn new(sla: Sla) -> Self {
        Self {
            sla,
            shaping: RewardShaping::Shaped,
            max_loss_frac: None,
            weight: 1.0,
        }
    }

    /// Adds a packet-loss ceiling to the agreement.
    pub fn with_loss_cap(mut self, max_loss_frac: f64) -> Self {
        self.max_loss_frac = Some(max_loss_frac);
        self
    }

    /// Sets the tenant's combination weight.
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Whether an epoch outcome satisfies the whole agreement (goal
    /// constraint *and* loss ceiling).
    pub fn satisfied(&self, throughput_gbps: f64, energy_j: f64, loss_frac: f64) -> bool {
        self.sla.satisfied(throughput_gbps, energy_j)
            && self.max_loss_frac.is_none_or(|cap| loss_frac <= cap)
    }
}

/// Computes a tenant's shaped reward for an epoch outcome.
///
/// The base term is [`reward_scaled`] on the tenant's goal; a violated loss
/// ceiling overrides it with zero (strict) or a negative proportional to the
/// excess loss (shaped), mirroring how the goal constraints are penalized.
pub fn tenant_reward_scaled(
    tenant: &TenantSla,
    throughput_gbps: f64,
    energy_j: f64,
    loss_frac: f64,
    energy_scale_j: f64,
) -> f64 {
    if let Some(cap) = tenant.max_loss_frac {
        if loss_frac > cap {
            return match tenant.shaping {
                RewardShaping::Strict => 0.0,
                RewardShaping::Shaped => -((loss_frac - cap) / (1.0 - cap).max(1e-9)).min(1.0),
            };
        }
    }
    reward_scaled(
        tenant.sla,
        tenant.shaping,
        throughput_gbps,
        energy_j,
        energy_scale_j,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxt_rewards_throughput_within_cap() {
        let sla = Sla::MaxThroughput {
            energy_cap_j: 2000.0,
        };
        let lo = reward(sla, RewardShaping::Strict, 2.0, 1500.0);
        let hi = reward(sla, RewardShaping::Strict, 8.0, 1500.0);
        assert!(hi > lo);
        // Violation: zero under strict, negative under shaped.
        assert_eq!(reward(sla, RewardShaping::Strict, 9.0, 2500.0), 0.0);
        assert!(reward(sla, RewardShaping::Shaped, 9.0, 2500.0) < 0.0);
    }

    #[test]
    fn mine_rewards_energy_reduction_above_floor() {
        let sla = Sla::MinEnergy {
            throughput_floor_gbps: 7.5,
        };
        let wasteful = reward(sla, RewardShaping::Strict, 8.0, 3000.0);
        let frugal = reward(sla, RewardShaping::Strict, 8.0, 1200.0);
        assert!(frugal > wasteful);
        assert_eq!(reward(sla, RewardShaping::Strict, 5.0, 800.0), 0.0);
        assert!(reward(sla, RewardShaping::Shaped, 5.0, 800.0) < 0.0);
    }

    #[test]
    fn mine_any_satisfying_setting_beats_any_violation() {
        // The paper: a high-energy setting that meets the floor "is better
        // than any setting that fails to maintain the throughput guarantee".
        let sla = Sla::MinEnergy {
            throughput_floor_gbps: 7.5,
        };
        let meets_expensively = reward(sla, RewardShaping::Shaped, 7.6, 3900.0);
        let misses_cheaply = reward(sla, RewardShaping::Shaped, 7.0, 500.0);
        assert!(meets_expensively > misses_cheaply);
    }

    #[test]
    fn ee_reward_is_efficiency_ratio() {
        let a = reward(Sla::EnergyEfficiency, RewardShaping::Strict, 6.0, 2000.0);
        let b = reward(Sla::EnergyEfficiency, RewardShaping::Strict, 6.0, 1000.0);
        let c = reward(Sla::EnergyEfficiency, RewardShaping::Strict, 3.0, 1000.0);
        assert!(b > a, "less energy, same throughput → more efficient");
        assert!(b > c, "more throughput, same energy → more efficient");
        assert_eq!(
            reward(Sla::EnergyEfficiency, RewardShaping::Strict, 5.0, 0.0),
            0.0
        );
    }

    #[test]
    fn satisfied_matches_constraints() {
        assert!(Sla::paper_max_throughput().satisfied(9.0, 1999.0));
        assert!(!Sla::paper_max_throughput().satisfied(9.0, 2001.0));
        assert!(Sla::paper_min_energy().satisfied(7.5, 9999.0));
        assert!(!Sla::paper_min_energy().satisfied(7.4, 1.0));
        assert!(Sla::EnergyEfficiency.satisfied(0.0, f64::MAX));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Sla::paper_max_throughput().name(), "MaxT");
        assert_eq!(Sla::paper_min_energy().name(), "MinE");
        assert_eq!(Sla::EnergyEfficiency.name(), "EE");
    }

    #[test]
    fn tenant_loss_ceiling_gates_the_goal_reward() {
        let t = TenantSla::new(Sla::EnergyEfficiency).with_loss_cap(0.02);
        // Within the ceiling: reward equals the bare goal reward.
        let ok = tenant_reward_scaled(&t, 6.0, 1500.0, 0.01, DEFAULT_ENERGY_SCALE_J);
        assert_eq!(
            ok,
            reward(Sla::EnergyEfficiency, RewardShaping::Shaped, 6.0, 1500.0)
        );
        assert!(t.satisfied(6.0, 1500.0, 0.01));
        // Beyond it: shaped penalty grows with the excess, strict zeroes out.
        let mild = tenant_reward_scaled(&t, 6.0, 1500.0, 0.05, DEFAULT_ENERGY_SCALE_J);
        let severe = tenant_reward_scaled(&t, 6.0, 1500.0, 0.40, DEFAULT_ENERGY_SCALE_J);
        assert!(mild < 0.0 && severe < mild, "mild {mild}, severe {severe}");
        assert!(!t.satisfied(6.0, 1500.0, 0.05));
        let strict = TenantSla {
            shaping: RewardShaping::Strict,
            ..t
        };
        assert_eq!(
            tenant_reward_scaled(&strict, 6.0, 1500.0, 0.05, DEFAULT_ENERGY_SCALE_J),
            0.0
        );
    }

    #[test]
    fn tenant_without_ceiling_matches_plain_reward() {
        let t = TenantSla::new(Sla::paper_min_energy());
        for (tp, e, loss) in [(8.0, 1200.0, 0.0), (8.0, 1200.0, 0.9), (5.0, 800.0, 0.3)] {
            assert_eq!(
                tenant_reward_scaled(&t, tp, e, loss, DEFAULT_ENERGY_SCALE_J),
                reward(Sla::paper_min_energy(), RewardShaping::Shaped, tp, e),
                "loss must not matter without a ceiling"
            );
        }
        assert!(t.satisfied(8.0, 9999.0, 1.0));
    }

    #[test]
    fn tenant_builders_compose() {
        let t = TenantSla::new(Sla::EnergyEfficiency)
            .with_loss_cap(0.1)
            .with_weight(2.5);
        assert_eq!(t.max_loss_frac, Some(0.1));
        assert_eq!(t.weight, 2.5);
        assert_eq!(t.shaping, RewardShaping::Shaped);
    }
}

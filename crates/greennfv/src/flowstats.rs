//! Online flow statistics (paper §1): "Statistical analysis of the network
//! flows enables GreenNFV to identify packet arrival rates and traffic
//! patterns. The packet arrival rate decides the polling frequency to match
//! enough resources to achieve the target performance."
//!
//! [`FlowAnalyzer`] ingests per-epoch arrival-rate samples and maintains the
//! running statistics a controller needs: smoothed rate, trend, variance,
//! and the index of dispersion that separates CBR / Poisson / bursty
//! traffic. [`RateClass`] drives polling-frequency and batch-size hints.

use nfv_sim::prelude::Ewma;
use serde::{Deserialize, Serialize};

/// Traffic-pattern classification from the index of dispersion
/// (variance-to-mean ratio of per-window counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// Near-deterministic arrivals (dispersion « 1).
    ConstantRate,
    /// Poisson-like arrivals (dispersion ≈ 1).
    Poisson,
    /// Bursty / on-off arrivals (dispersion » 1).
    Bursty,
}

/// Coarse load class used to pick polling strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RateClass {
    /// Arrivals are sparse: sleep and wake on interrupt (callback mode).
    Idle,
    /// Moderate: hybrid callback/poll.
    Moderate,
    /// Near line rate: dedicated polling.
    Saturated,
}

/// Online estimator over per-epoch arrival-rate samples.
#[derive(Debug)]
pub struct FlowAnalyzer {
    /// Smoothed arrival rate (pps).
    rate: Ewma,
    /// Smoothed squared deviation (for variance).
    var: Ewma,
    /// Previous smoothed rate (for trend).
    prev_rate: Option<f64>,
    /// Last computed trend (pps per epoch).
    trend: f64,
    /// Window length used to convert rates into counts for dispersion.
    window_s: f64,
    samples: u64,
}

impl FlowAnalyzer {
    /// Creates an analyzer; `alpha` is the EWMA smoothing factor and
    /// `window_s` the sampling window length.
    pub fn new(alpha: f64, window_s: f64) -> Self {
        Self {
            rate: Ewma::new(alpha),
            var: Ewma::new(alpha),
            prev_rate: None,
            trend: 0.0,
            window_s,
            samples: 0,
        }
    }

    /// Default configuration for 30-second control epochs.
    pub fn for_epochs() -> Self {
        Self::new(0.3, 30.0)
    }

    /// Ingests one window's observed arrival rate (pps).
    pub fn observe(&mut self, rate_pps: f64) {
        let mean = self.rate.value().unwrap_or(rate_pps);
        let dev = rate_pps - mean;
        self.var.update(dev * dev);
        let new_mean = self.rate.update(rate_pps);
        if let Some(prev) = self.prev_rate {
            self.trend = new_mean - prev;
        }
        self.prev_rate = Some(new_mean);
        self.samples += 1;
    }

    /// Number of samples ingested.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Smoothed arrival rate (pps).
    pub fn mean_rate_pps(&self) -> f64 {
        self.rate.value().unwrap_or(0.0)
    }

    /// One-epoch-ahead rate forecast (mean + trend).
    pub fn forecast_pps(&self) -> f64 {
        (self.mean_rate_pps() + self.trend).max(0.0)
    }

    /// Rate variance across windows (pps²).
    pub fn rate_variance(&self) -> f64 {
        self.var.value().unwrap_or(0.0)
    }

    /// Index of dispersion of *counts* per window: `Var(N) / E[N]`.
    ///
    /// For rates, `N = rate × window`, so `Var(N) = Var(rate) × window²`.
    pub fn index_of_dispersion(&self) -> f64 {
        let mean_n = self.mean_rate_pps() * self.window_s;
        if mean_n <= 0.0 {
            return 0.0;
        }
        self.rate_variance() * self.window_s * self.window_s / mean_n
    }

    /// Classifies the traffic pattern from the index of dispersion.
    pub fn pattern(&self) -> TrafficPattern {
        let d = self.index_of_dispersion();
        if d < 0.1 {
            TrafficPattern::ConstantRate
        } else if d < 10.0 {
            TrafficPattern::Poisson
        } else {
            TrafficPattern::Bursty
        }
    }

    /// Load class relative to a capacity estimate (pps).
    pub fn rate_class(&self, capacity_pps: f64) -> RateClass {
        if capacity_pps <= 0.0 {
            return RateClass::Saturated;
        }
        let util = self.forecast_pps() / capacity_pps;
        if util < 0.05 {
            RateClass::Idle
        } else if util < 0.75 {
            RateClass::Moderate
        } else {
            RateClass::Saturated
        }
    }

    /// Suggested batch size: bursty or saturated traffic benefits from big
    /// batches; idle links should process per-arrival to minimize latency.
    pub fn suggested_batch(&self, capacity_pps: f64) -> u32 {
        match (self.rate_class(capacity_pps), self.pattern()) {
            (RateClass::Idle, _) => 1,
            (RateClass::Moderate, TrafficPattern::Bursty) => 128,
            (RateClass::Moderate, _) => 32,
            (RateClass::Saturated, _) => 192,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_sim::prelude::*;

    #[test]
    fn mean_converges_on_constant_input() {
        let mut a = FlowAnalyzer::for_epochs();
        for _ in 0..50 {
            a.observe(1e6);
        }
        assert!((a.mean_rate_pps() - 1e6).abs() < 1.0);
        assert_eq!(a.pattern(), TrafficPattern::ConstantRate);
        assert_eq!(a.samples(), 50);
    }

    #[test]
    fn trend_tracks_ramps() {
        let mut a = FlowAnalyzer::new(0.5, 30.0);
        for i in 0..40 {
            a.observe(1e5 * f64::from(i));
        }
        assert!(a.trend > 0.0);
        assert!(a.forecast_pps() > a.mean_rate_pps());
    }

    #[test]
    fn classifies_real_generator_patterns() {
        // Feed actual TrafficGen windows and check the classifier separates
        // CBR from bursty on/off traffic.
        let observe_gen = |flows: FlowSet| {
            let mut gen = TrafficGen::new(flows, 11);
            let mut a = FlowAnalyzer::new(0.2, 30.0);
            for _ in 0..200 {
                let w = gen.next_window(30.0);
                a.observe(TrafficGen::window_rate_pps(&w, 30.0));
            }
            a
        };
        let cbr = observe_gen(FlowSet::new(vec![FlowSpec::cbr(0, 1e6, 64)]).unwrap());
        assert_eq!(cbr.pattern(), TrafficPattern::ConstantRate);

        let onoff = observe_gen(
            FlowSet::new(vec![FlowSpec {
                id: 0,
                rate_pps: 1e6,
                packet_size: 64,
                pattern: ArrivalPattern::MarkovOnOff {
                    peak_factor: 3.0,
                    on_fraction: 1.0 / 3.0,
                },
            }])
            .unwrap(),
        );
        assert_eq!(onoff.pattern(), TrafficPattern::Bursty);
        // On/off variance must dwarf CBR variance.
        assert!(onoff.rate_variance() > 100.0 * cbr.rate_variance().max(1.0));
    }

    #[test]
    fn rate_class_thresholds() {
        let mut a = FlowAnalyzer::for_epochs();
        a.observe(1e4);
        assert_eq!(a.rate_class(1e6), RateClass::Idle);
        let mut a = FlowAnalyzer::for_epochs();
        a.observe(5e5);
        assert_eq!(a.rate_class(1e6), RateClass::Moderate);
        let mut a = FlowAnalyzer::for_epochs();
        a.observe(9.9e5);
        assert_eq!(a.rate_class(1e6), RateClass::Saturated);
        assert_eq!(a.rate_class(0.0), RateClass::Saturated);
    }

    #[test]
    fn batch_hints_follow_paper_logic() {
        // Idle → per-packet (the paper sleeps NFs when no packets arrive);
        // saturated → deep batching.
        let mut idle = FlowAnalyzer::for_epochs();
        idle.observe(1e3);
        assert_eq!(idle.suggested_batch(1e6), 1);
        let mut hot = FlowAnalyzer::for_epochs();
        hot.observe(9e5);
        assert_eq!(hot.suggested_batch(1e6), 192);
    }

    #[test]
    fn empty_analyzer_is_quiet() {
        let a = FlowAnalyzer::for_epochs();
        assert_eq!(a.mean_rate_pps(), 0.0);
        assert_eq!(a.index_of_dispersion(), 0.0);
        assert_eq!(a.forecast_pps(), 0.0);
    }
}

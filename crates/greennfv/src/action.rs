//! Action codec: normalized RL actions ↔ hardware knob settings.
//!
//! DDPG emits actions in `[-1, 1]^5` (paper Eq. 7: CPU, frequency, LLC, DMA
//! buffer, batch size); this module maps them onto the physical knob ranges
//! and back. The CPU dimension encodes *core-equivalents* (cores × cgroup
//! share), matching the paper's "CPU usage %" panels that range up to 400%.

use nfv_sim::prelude::*;
use serde::{Deserialize, Serialize};

/// Number of control knobs per chain.
pub const ACTION_DIM: usize = 5;

/// Physical ranges of the five knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActionSpace {
    /// Minimum core-equivalents (cores × share).
    pub cpu_min: f64,
    /// Maximum core-equivalents (limited by the node's NF cores).
    pub cpu_max: f64,
    /// DVFS range low, GHz.
    pub freq_min: f64,
    /// DVFS range high, GHz.
    pub freq_max: f64,
    /// Minimum LLC fraction.
    pub llc_min: f64,
    /// Maximum LLC fraction.
    pub llc_max: f64,
    /// Minimum DMA buffer, MB.
    pub dma_min_mb: f64,
    /// Maximum DMA buffer, MB.
    pub dma_max_mb: f64,
    /// Minimum batch size.
    pub batch_min: u32,
    /// Maximum batch size.
    pub batch_max: u32,
}

impl Default for ActionSpace {
    fn default() -> Self {
        Self {
            cpu_min: 0.25,
            cpu_max: 6.0,
            freq_min: FREQ_MIN_GHZ,
            freq_max: FREQ_MAX_GHZ,
            llc_min: 0.05,
            llc_max: 0.95,
            dma_min_mb: 0.5,
            dma_max_mb: 40.0,
            batch_min: BATCH_MIN,
            batch_max: 256,
        }
    }
}

impl ActionSpace {
    /// Decodes a normalized action vector into knob settings.
    ///
    /// Values are clamped to [-1, 1] first, so any real vector is legal.
    pub fn decode(&self, action: &[f64]) -> KnobSettings {
        assert_eq!(action.len(), ACTION_DIM, "action must have 5 dimensions");
        let u = |i: usize| (action[i].clamp(-1.0, 1.0) + 1.0) / 2.0;

        let cpu_eq = self.cpu_min + u(0) * (self.cpu_max - self.cpu_min);
        let cores = cpu_eq.ceil().max(1.0) as u32;
        let share = (cpu_eq / f64::from(cores)).clamp(0.05, 1.0);

        let freq_ghz = self.freq_min + u(1) * (self.freq_max - self.freq_min);
        let llc_fraction = self.llc_min + u(2) * (self.llc_max - self.llc_min);
        let dma_mb = self.dma_min_mb + u(3) * (self.dma_max_mb - self.dma_min_mb);
        let batch = (f64::from(self.batch_min) + u(4) * f64::from(self.batch_max - self.batch_min))
            .round() as u32;

        KnobSettings {
            cpu: CpuAllocation { cores, share },
            freq_ghz,
            llc_fraction,
            dma: DmaBuffer::from_mb(dma_mb),
            batch: batch.clamp(self.batch_min, self.batch_max),
        }
    }

    /// Encodes knob settings back into a normalized action vector.
    pub fn encode(&self, knobs: &KnobSettings) -> [f64; ACTION_DIM] {
        let norm = |v: f64, lo: f64, hi: f64| ((v - lo) / (hi - lo) * 2.0 - 1.0).clamp(-1.0, 1.0);
        [
            norm(knobs.cpu.effective_cores(), self.cpu_min, self.cpu_max),
            norm(knobs.freq_ghz, self.freq_min, self.freq_max),
            norm(knobs.llc_fraction, self.llc_min, self.llc_max),
            norm(knobs.dma.mb(), self.dma_min_mb, self.dma_max_mb),
            norm(
                f64::from(knobs.batch),
                f64::from(self.batch_min),
                f64::from(self.batch_max),
            ),
        ]
    }

    /// Per-dimension (lo, hi) bounds as vectors — used by the Q-learning
    /// discretizer.
    pub fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
        (
            vec![
                self.cpu_min,
                self.freq_min,
                self.llc_min,
                self.dma_min_mb,
                f64::from(self.batch_min),
            ],
            vec![
                self.cpu_max,
                self.freq_max,
                self.llc_max,
                self.dma_max_mb,
                f64::from(self.batch_max),
            ],
        )
    }

    /// Decodes a *physical-units* vector `[cpu_eq, ghz, llc, dma_mb, batch]`
    /// (the Q-learning discretizer's native space) into knobs.
    pub fn decode_physical(&self, v: &[f64]) -> KnobSettings {
        assert_eq!(v.len(), ACTION_DIM);
        let cpu_eq = v[0].clamp(self.cpu_min, self.cpu_max);
        let cores = cpu_eq.ceil().max(1.0) as u32;
        let share = (cpu_eq / f64::from(cores)).clamp(0.05, 1.0);
        KnobSettings {
            cpu: CpuAllocation { cores, share },
            freq_ghz: v[1].clamp(self.freq_min, self.freq_max),
            llc_fraction: v[2].clamp(self.llc_min, self.llc_max),
            dma: DmaBuffer::from_mb(v[3].clamp(self.dma_min_mb, self.dma_max_mb)),
            batch: (v[4].round() as u32).clamp(self.batch_min, self.batch_max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_extremes_hit_range_ends() {
        let sp = ActionSpace::default();
        let lo = sp.decode(&[-1.0; 5]);
        assert_eq!(lo.cpu.cores, 1);
        assert!((lo.cpu.share - 0.25).abs() < 1e-9);
        assert!((lo.freq_ghz - FREQ_MIN_GHZ).abs() < 1e-9);
        assert!((lo.llc_fraction - 0.05).abs() < 1e-9);
        assert_eq!(lo.batch, 1);
        let hi = sp.decode(&[1.0; 5]);
        assert_eq!(hi.cpu.cores, 6);
        assert!((hi.cpu.share - 1.0).abs() < 1e-9);
        assert!((hi.freq_ghz - FREQ_MAX_GHZ).abs() < 1e-9);
        assert_eq!(hi.batch, 256);
        assert!((hi.dma.mb() - 40.0).abs() < 0.01);
    }

    #[test]
    fn decoded_knobs_always_validate() {
        let sp = ActionSpace::default();
        // Grid + out-of-range values must all produce valid knobs.
        for a0 in [-2.0, -1.0, -0.3, 0.0, 0.7, 1.0, 5.0] {
            for a1 in [-1.0, 0.0, 1.0] {
                let k = sp.decode(&[a0, a1, a1, a0.min(1.0), a1]);
                assert!(k.validate().is_ok(), "{k:?}");
            }
        }
    }

    #[test]
    fn encode_decode_roundtrip_cpu_equivalents() {
        let sp = ActionSpace::default();
        let action = [0.2, -0.5, 0.8, 0.0, -0.9];
        let knobs = sp.decode(&action);
        let back = sp.encode(&knobs);
        let again = sp.decode(&back);
        // Core-equivalents and continuous knobs survive the roundtrip.
        assert!((knobs.cpu.effective_cores() - again.cpu.effective_cores()).abs() < 0.02);
        assert!((knobs.freq_ghz - again.freq_ghz).abs() < 1e-6);
        assert!((knobs.llc_fraction - again.llc_fraction).abs() < 1e-6);
        assert!((knobs.dma.mb() - again.dma.mb()).abs() < 0.01);
        assert_eq!(knobs.batch, again.batch);
    }

    #[test]
    fn cpu_split_into_cores_and_share() {
        let sp = ActionSpace::default();
        // cpu_eq = 2.5 → 3 cores at ~0.833 share.
        let a = sp.encode(&KnobSettings {
            cpu: CpuAllocation {
                cores: 3,
                share: 2.5 / 3.0,
            },
            freq_ghz: 1.5,
            llc_fraction: 0.5,
            dma: DmaBuffer::from_mb(4.0),
            batch: 32,
        });
        let k = sp.decode(&a);
        assert_eq!(k.cpu.cores, 3);
        assert!((k.cpu.effective_cores() - 2.5).abs() < 0.05);
    }

    #[test]
    fn physical_decode_clamps() {
        let sp = ActionSpace::default();
        let k = sp.decode_physical(&[99.0, 0.1, 2.0, 1000.0, 1e6]);
        assert!(k.validate().is_ok());
        assert_eq!(k.cpu.cores, 6);
        assert!((k.freq_ghz - FREQ_MIN_GHZ).abs() < 1e-9);
        assert_eq!(k.batch, 256);
    }

    #[test]
    fn bounds_align_with_dimensions() {
        let (lo, hi) = ActionSpace::default().bounds();
        assert_eq!(lo.len(), ACTION_DIM);
        assert_eq!(hi.len(), ACTION_DIM);
        assert!(lo.iter().zip(&hi).all(|(a, b)| a < b));
    }
}

//! Experiment reporting: text tables for the reproduced figures, the
//! training-energy amortization analysis of Figure 11 (Eq. 9), and the
//! cross-scenario comparison used by `examples/scenario_sweep.rs`.

use serde::{Deserialize, Serialize};

use crate::controller::RunResult;
use crate::scenario::ScenarioRunResult;

/// Renders a fixed-width text table.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (c, w) in cells.iter().zip(widths) {
            line.push_str(&format!(" {c:>w$} |", w = w));
        }
        line.push('\n');
        line
    };
    let head: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('|');
    for w in &widths {
        out.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Renders one row per scenario run: cluster-level throughput, energy,
/// efficiency, and the worst tenant's SLA satisfaction — the sweep-level
/// view over the scenario registry.
pub fn scenario_comparison(results: &[ScenarioRunResult]) -> String {
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            let tenants = r.tenants.len();
            let worst_sat = r
                .tenants
                .iter()
                .map(|t| t.satisfaction_frac)
                .fold(1.0f64, f64::min);
            vec![
                r.name.clone(),
                format!("{}", r.epochs),
                format!("{tenants}"),
                format!("{:.2}", r.mean_throughput_gbps),
                format!("{:.0}", r.mean_energy_j),
                format!("{:.2}", r.efficiency),
                format!("{:.0}", worst_sat * 100.0),
            ]
        })
        .collect();
    table(
        &[
            "Scenario",
            "Epochs",
            "Tenants",
            "T (Gbps)",
            "E (J)",
            "Gbps/kJ",
            "Worst sat (%)",
        ],
        &rows,
    )
}

/// The Figure 9 comparison across all models.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComparisonReport {
    /// Per-model results.
    pub results: Vec<RunResult>,
}

impl ComparisonReport {
    /// Finds a model's result by name.
    pub fn get(&self, name: &str) -> Option<&RunResult> {
        self.results.iter().find(|r| r.name == name)
    }

    /// Throughput ratio of `model` over `reference`.
    pub fn throughput_ratio(&self, model: &str, reference: &str) -> Option<f64> {
        let m = self.get(model)?;
        let r = self.get(reference)?;
        if r.mean_throughput_gbps <= 0.0 {
            return None;
        }
        Some(m.mean_throughput_gbps / r.mean_throughput_gbps)
    }

    /// Energy ratio of `model` over `reference`.
    pub fn energy_ratio(&self, model: &str, reference: &str) -> Option<f64> {
        let m = self.get(model)?;
        let r = self.get(reference)?;
        if r.mean_energy_j <= 0.0 {
            return None;
        }
        Some(m.mean_energy_j / r.mean_energy_j)
    }

    /// Renders the Figure 9 table (throughput and energy per model).
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .results
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    format!("{:.2}", r.mean_throughput_gbps),
                    format!("{:.0}", r.mean_energy_j),
                    format!("{:.2}", r.efficiency),
                ]
            })
            .collect();
        table(
            &["Model", "Throughput (Gbps)", "Energy (J)", "Gbps/kJ"],
            &rows,
        )
    }
}

/// Figure 11: energy saving over deployment time, amortizing the RL training
/// energy (paper Eq. 9):
///
/// ```text
/// E_s(t) = (E_b(t) − (E_nf(t) + E_t)) / E_b(t)
/// ```
///
/// where `E_t` is the one-time training energy, `E_nf` the trained model's
/// cumulative NFV energy, and `E_b` the baseline's. (The paper's Eq. 9 prints
/// the numerator reversed; the *plotted* quantity — positive savings growing
/// toward an asymptote — is this one.)
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AmortizationCurve {
    /// One-time training energy, joules.
    pub training_energy_j: f64,
    /// Trained model's mean power draw, watts.
    pub model_power_w: f64,
    /// Baseline's mean power draw, watts.
    pub baseline_power_w: f64,
}

impl AmortizationCurve {
    /// Builds the curve inputs from run results and training energy.
    pub fn new(
        training_energy_j: f64,
        model: &RunResult,
        baseline: &RunResult,
        epoch_s: f64,
    ) -> Self {
        Self {
            training_energy_j,
            model_power_w: model.mean_energy_j / epoch_s,
            baseline_power_w: baseline.mean_energy_j / epoch_s,
        }
    }

    /// Energy saving fraction after `hours` of deployment.
    pub fn saving_at_hours(&self, hours: f64) -> f64 {
        let t_s = hours * 3600.0;
        let e_b = self.baseline_power_w * t_s;
        let e_nf = self.model_power_w * t_s + self.training_energy_j;
        if e_b <= 0.0 {
            return 0.0;
        }
        (e_b - e_nf) / e_b
    }

    /// Asymptotic saving as deployment time → ∞.
    pub fn asymptotic_saving(&self) -> f64 {
        if self.baseline_power_w <= 0.0 {
            return 0.0;
        }
        1.0 - self.model_power_w / self.baseline_power_w
    }

    /// Hours of deployment needed before net savings turn positive.
    pub fn break_even_hours(&self) -> f64 {
        let rate = self.baseline_power_w - self.model_power_w;
        if rate <= 0.0 {
            return f64::INFINITY;
        }
        self.training_energy_j / rate / 3600.0
    }

    /// Renders the Figure 11 series for the given hour marks.
    pub fn render(&self, hours: &[f64]) -> String {
        let rows: Vec<Vec<String>> = hours
            .iter()
            .map(|&h| {
                vec![
                    format!("{h:.1}"),
                    format!("{:.1}", self.saving_at_hours(h) * 100.0),
                ]
            })
            .collect();
        table(&["Time (hours)", "Energy saving (%)"], &rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::RunResult;

    fn rr(name: &str, t: f64, e: f64) -> RunResult {
        RunResult {
            name: name.into(),
            mean_throughput_gbps: t,
            mean_energy_j: e,
            efficiency: t / (e / 1000.0),
            trace: Vec::new(),
        }
    }

    #[test]
    fn table_renders_aligned() {
        let s = table(
            &["Model", "X"],
            &[
                vec!["Baseline".into(), "1.0".into()],
                vec!["B".into(), "22.5".into()],
            ],
        );
        assert!(s.contains("Baseline"));
        assert!(s.lines().count() == 4);
        // All lines equal width.
        let widths: Vec<usize> = s.lines().map(|l| l.len()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{s}");
    }

    #[test]
    fn comparison_ratios() {
        let rep = ComparisonReport {
            results: vec![
                rr("Baseline", 2.0, 2800.0),
                rr("GreenNFV(MaxT)", 8.8, 1880.0),
            ],
        };
        let tr = rep.throughput_ratio("GreenNFV(MaxT)", "Baseline").unwrap();
        assert!((tr - 4.4).abs() < 1e-9);
        let er = rep.energy_ratio("GreenNFV(MaxT)", "Baseline").unwrap();
        assert!((er - 0.671).abs() < 0.01);
        assert!(rep.get("missing").is_none());
        assert!(rep.render().contains("GreenNFV(MaxT)"));
    }

    #[test]
    fn amortization_matches_paper_shape() {
        // MinE draws 36 W vs 95 W baseline; training cost 130 kJ.
        let c = AmortizationCurve {
            training_energy_j: 130_000.0,
            model_power_w: 36.0,
            baseline_power_w: 95.0,
        };
        // Early: training cost dominates; grows toward the asymptote.
        let early = c.saving_at_hours(1.0);
        let late = c.saving_at_hours(6.0);
        assert!(early < late);
        assert!(late < c.asymptotic_saving());
        // Paper: ~23% at first hour, reaching ~62%.
        assert!((c.asymptotic_saving() - 0.62).abs() < 0.01);
        assert!(early > 0.0 && early < 0.45, "early saving {early}");
        assert!(c.break_even_hours() < 4.0);
    }

    #[test]
    fn scenario_comparison_renders_every_run() {
        use crate::scenario::Scenario;
        let runs: Vec<_> = [
            Scenario::baseline_homogeneous(),
            Scenario::two_tenant_shared_node(),
        ]
        .iter()
        .map(|s| s.run().unwrap())
        .collect();
        let t = scenario_comparison(&runs);
        assert!(t.contains("baseline-homogeneous"));
        assert!(t.contains("two-tenant-shared-node"));
        assert!(t.contains("Worst sat"));
    }

    #[test]
    fn amortization_degenerate_cases() {
        let c = AmortizationCurve {
            training_energy_j: 1000.0,
            model_power_w: 100.0,
            baseline_power_w: 90.0,
        };
        assert!(c.asymptotic_saving() < 0.0, "model worse than baseline");
        assert_eq!(c.break_even_hours(), f64::INFINITY);
    }
}

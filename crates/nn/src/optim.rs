//! Optimizers: SGD (with optional momentum) and Adam.
//!
//! Optimizers own per-parameter state keyed by layer index, so one optimizer
//! instance must stay paired with one network.

use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;
use crate::mlp::Mlp;

/// Plain SGD with optional momentum and gradient clipping.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
    /// Momentum coefficient (0 disables).
    pub momentum: f64,
    /// Global gradient-norm clip (0 disables).
    pub grad_clip: f64,
    velocity_w: Vec<Matrix>,
    velocity_b: Vec<Vec<f64>>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f64, momentum: f64) -> Self {
        Self {
            lr,
            momentum,
            grad_clip: 0.0,
            velocity_w: Vec::new(),
            velocity_b: Vec::new(),
        }
    }

    /// Applies one step using the gradients stored in `net`'s layers.
    pub fn step(&mut self, net: &mut Mlp) {
        ensure_state(&mut self.velocity_w, &mut self.velocity_b, net);
        let clip = compute_clip_scale(net, self.grad_clip);
        for (i, layer) in net.layers_mut().iter_mut().enumerate() {
            // Split borrow: read the stored gradients in place instead of
            // cloning them every step (same arithmetic, zero allocation).
            let Some((weights, bias, gw, gb)) = layer.params_grads_mut() else {
                continue;
            };
            let vw = &mut self.velocity_w[i];
            vw.scale_add(self.momentum, gw, clip);
            weights.scale_add(1.0, vw, -self.lr);
            let vb = &mut self.velocity_b[i];
            for ((v, g), b) in vb.iter_mut().zip(gb).zip(bias) {
                *v = self.momentum * *v + clip * g;
                *b -= self.lr * *v;
            }
        }
    }
}

/// Adam optimizer (Kingma & Ba), the standard choice for DDPG training.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical stabilizer.
    pub eps: f64,
    /// Global gradient-norm clip (0 disables).
    pub grad_clip: f64,
    t: u64,
    m_w: Vec<Matrix>,
    v_w: Vec<Matrix>,
    m_b: Vec<Vec<f64>>,
    v_b: Vec<Vec<f64>>,
}

impl Adam {
    /// Creates an Adam optimizer with standard betas.
    pub fn new(lr: f64) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            grad_clip: 0.0,
            t: 0,
            m_w: Vec::new(),
            v_w: Vec::new(),
            m_b: Vec::new(),
            v_b: Vec::new(),
        }
    }

    /// Number of steps taken.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one step using the gradients stored in `net`'s layers.
    pub fn step(&mut self, net: &mut Mlp) {
        ensure_state(&mut self.m_w, &mut self.m_b, net);
        ensure_state(&mut self.v_w, &mut self.v_b, net);
        self.t += 1;
        let clip = compute_clip_scale(net, self.grad_clip);
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, layer) in net.layers_mut().iter_mut().enumerate() {
            // Split borrow: gradients stay in the layer, parameters update
            // in place — the former per-step `gw.clone()` of every weight
            // matrix is gone and the moment updates fuse into one sweep of
            // zipped slices. Update order and arithmetic are unchanged.
            let Some((weights, bias, gw, gb)) = layer.params_grads_mut() else {
                continue;
            };
            // Weights.
            {
                let m = &mut self.m_w[i];
                let v = &mut self.v_w[i];
                for (((w, &graw), md), vd) in weights
                    .data_mut()
                    .iter_mut()
                    .zip(gw.data())
                    .zip(m.data_mut().iter_mut())
                    .zip(v.data_mut().iter_mut())
                {
                    let g = graw * clip;
                    *md = self.beta1 * *md + (1.0 - self.beta1) * g;
                    *vd = self.beta2 * *vd + (1.0 - self.beta2) * g * g;
                    let mhat = *md / bc1;
                    let vhat = *vd / bc2;
                    *w -= self.lr * mhat / (vhat.sqrt() + self.eps);
                }
            }
            // Biases.
            {
                let m = &mut self.m_b[i];
                let v = &mut self.v_b[i];
                for (((b, &graw), m), v) in
                    bias.iter_mut().zip(gb).zip(m.iter_mut()).zip(v.iter_mut())
                {
                    let g = graw * clip;
                    *m = self.beta1 * *m + (1.0 - self.beta1) * g;
                    *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
                    let mhat = *m / bc1;
                    let vhat = *v / bc2;
                    *b -= self.lr * mhat / (vhat.sqrt() + self.eps);
                }
            }
        }
    }
}

fn ensure_state(ws: &mut Vec<Matrix>, bs: &mut Vec<Vec<f64>>, net: &Mlp) {
    if ws.len() == net.num_layers() {
        return;
    }
    ws.clear();
    bs.clear();
    for l in net.layers() {
        ws.push(Matrix::zeros(l.weights().rows(), l.weights().cols()));
        bs.push(vec![0.0; l.bias().len()]);
    }
}

/// Global gradient-norm clip factor: 1.0 when disabled or under the limit.
fn compute_clip_scale(net: &Mlp, clip: f64) -> f64 {
    if clip <= 0.0 {
        return 1.0;
    }
    let mut sq = 0.0;
    for l in net.layers() {
        if let Some((gw, gb)) = l.grads() {
            sq += gw.data().iter().map(|g| g * g).sum::<f64>();
            sq += gb.iter().map(|g| g * g).sum::<f64>();
        }
    }
    let norm = sq.sqrt();
    if norm > clip {
        clip / norm
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;

    /// Train y = 3x - 1 regression with each optimizer; both must converge.
    fn train_linear(mut step: impl FnMut(&mut Mlp), net: &mut Mlp) -> f64 {
        let xs: Vec<f64> = (0..20).map(|i| i as f64 / 10.0 - 1.0).collect();
        let x = Matrix::from_vec(xs.len(), 1, xs.clone());
        let t = Matrix::from_vec(xs.len(), 1, xs.iter().map(|&x| 3.0 * x - 1.0).collect());
        let mut last_loss = 0.0;
        for _ in 0..2000 {
            let y = net.forward(&x);
            let (loss, grad) = crate::loss::mse(&y, &t);
            last_loss = loss;
            net.backward(&grad);
            step(net);
        }
        last_loss
    }

    #[test]
    fn sgd_converges_on_regression() {
        let mut net = Mlp::new(&[1, 8, 1], &[Activation::Tanh, Activation::Identity], 3);
        let mut opt = Sgd::new(0.02, 0.8);
        let loss = train_linear(|n| opt.step(n), &mut net);
        assert!(loss < 1e-2, "final loss {loss}");
    }

    #[test]
    fn adam_converges_on_regression() {
        let mut net = Mlp::new(&[1, 8, 1], &[Activation::Tanh, Activation::Identity], 4);
        let mut opt = Adam::new(0.02);
        let loss = train_linear(|n| opt.step(n), &mut net);
        assert!(loss < 1e-2, "final loss {loss}");
        assert!(opt.steps() > 0);
    }

    #[test]
    fn adam_beats_sgd_step_for_step_on_illconditioned_input() {
        // Inputs at very different scales: Adam's per-parameter scaling wins.
        let mk = || Mlp::new(&[2, 1], &[Activation::Identity], 5);
        let data = [([100.0, 0.01], 1.0), ([-100.0, -0.01], -1.0)];
        let run = |use_adam: bool| -> f64 {
            let mut net = mk();
            let mut adam = Adam::new(0.05);
            let mut sgd = Sgd::new(0.05 / 1e4, 0.0); // SGD needs a tiny lr to not blow up
            let mut loss = 0.0;
            for _ in 0..300 {
                loss = 0.0;
                for (x, t) in &data {
                    let y = net.forward(&Matrix::row(x.to_vec()));
                    let err = y.get(0, 0) - t;
                    loss += err * err;
                    net.backward(&Matrix::row(vec![2.0 * err]));
                    if use_adam {
                        adam.step(&mut net);
                    } else {
                        sgd.step(&mut net);
                    }
                }
            }
            loss
        };
        assert!(run(true) < run(false));
    }

    #[test]
    fn grad_clip_limits_update_magnitude() {
        let mut net = Mlp::new(&[1, 1], &[Activation::Identity], 6);
        let w_before = net.layers()[0].weights().get(0, 0);
        let mut opt = Sgd::new(1.0, 0.0);
        opt.grad_clip = 0.5;
        // Huge gradient.
        net.forward(&Matrix::row(vec![1000.0]));
        net.backward(&Matrix::row(vec![1000.0]));
        opt.step(&mut net);
        let w_after = net.layers()[0].weights().get(0, 0);
        // Without clipping the step would be ~1e6; with clip 0.5 and lr 1 it
        // is bounded by ~0.5.
        assert!((w_before - w_after).abs() <= 0.51);
    }
}

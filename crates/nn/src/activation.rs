//! Elementwise activation functions and their derivatives.

use serde::{Deserialize, Serialize};

/// Activation applied after a dense layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Identity (linear output layers, e.g. the critic's Q head).
    Identity,
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent (DDPG actor output, bounding actions to [-1, 1]).
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl Activation {
    /// Applies the activation to a pre-activation value.
    #[inline]
    pub fn apply(&self, x: f64) -> f64 {
        match self {
            Activation::Identity => x,
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        }
    }

    /// Derivative expressed in terms of the *output* value `y = apply(x)`.
    ///
    /// All four activations admit this form, which lets backward passes cache
    /// only the outputs.
    #[inline]
    pub fn derivative_from_output(&self, y: f64) -> f64 {
        match self {
            Activation::Identity => 1.0,
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - y * y,
            Activation::Sigmoid => y * (1.0 - y),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
    }

    #[test]
    fn tanh_bounds() {
        assert!(Activation::Tanh.apply(100.0) <= 1.0);
        assert!(Activation::Tanh.apply(-100.0) >= -1.0);
    }

    #[test]
    fn sigmoid_midpoint() {
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-6;
        for act in [
            Activation::Identity,
            Activation::Relu,
            Activation::Tanh,
            Activation::Sigmoid,
        ] {
            for &x in &[-1.5, -0.3, 0.4, 2.0] {
                let y = act.apply(x);
                let numeric = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                let analytic = act.derivative_from_output(y);
                assert!(
                    (numeric - analytic).abs() < 1e-5,
                    "{act:?} at {x}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }
}

//! Loss functions returning (value, gradient-w.r.t.-prediction).

use crate::matrix::Matrix;

/// Mean squared error over a batch; gradient is `2 (pred − target) / n`.
pub fn mse(pred: &Matrix, target: &Matrix) -> (f64, Matrix) {
    assert_eq!(pred.rows(), target.rows());
    assert_eq!(pred.cols(), target.cols());
    let n = (pred.rows() * pred.cols()) as f64;
    let mut grad = Matrix::zeros(pred.rows(), pred.cols());
    let mut total = 0.0;
    for i in 0..pred.data().len() {
        let d = pred.data()[i] - target.data()[i];
        total += d * d;
        grad.data_mut()[i] = 2.0 * d / n;
    }
    (total / n, grad)
}

/// Huber loss with threshold `delta`: quadratic near zero, linear in the
/// tails — robust to the outlier TD errors common early in DDPG training.
pub fn huber(pred: &Matrix, target: &Matrix, delta: f64) -> (f64, Matrix) {
    assert_eq!(pred.rows(), target.rows());
    assert_eq!(pred.cols(), target.cols());
    let n = (pred.rows() * pred.cols()) as f64;
    let mut grad = Matrix::zeros(pred.rows(), pred.cols());
    let mut total = 0.0;
    for i in 0..pred.data().len() {
        let d = pred.data()[i] - target.data()[i];
        if d.abs() <= delta {
            total += 0.5 * d * d;
            grad.data_mut()[i] = d / n;
        } else {
            total += delta * (d.abs() - 0.5 * delta);
            grad.data_mut()[i] = delta * d.signum() / n;
        }
    }
    (total / n, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_zero_at_match() {
        let p = Matrix::row(vec![1.0, 2.0]);
        let (l, g) = mse(&p, &p);
        assert_eq!(l, 0.0);
        assert!(g.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn mse_known_value_and_grad() {
        let p = Matrix::row(vec![3.0]);
        let t = Matrix::row(vec![1.0]);
        let (l, g) = mse(&p, &t);
        assert_eq!(l, 4.0);
        assert_eq!(g.data(), &[4.0]);
    }

    #[test]
    fn huber_matches_mse_inside_delta() {
        let p = Matrix::row(vec![0.5]);
        let t = Matrix::row(vec![0.0]);
        let (l, g) = huber(&p, &t, 1.0);
        assert!((l - 0.125).abs() < 1e-12);
        assert_eq!(g.data(), &[0.5]);
    }

    #[test]
    fn huber_linear_in_tails() {
        let p = Matrix::row(vec![10.0]);
        let t = Matrix::row(vec![0.0]);
        let (l, g) = huber(&p, &t, 1.0);
        assert!((l - 9.5).abs() < 1e-12);
        assert_eq!(g.data(), &[1.0], "gradient saturates at delta");
    }

    #[test]
    fn gradients_match_finite_difference() {
        let t = Matrix::row(vec![0.3, -0.8]);
        let p = Matrix::row(vec![0.9, -0.1]);
        let eps = 1e-6;
        for (name, f) in [
            (
                "mse",
                Box::new(|a: &Matrix, b: &Matrix| mse(a, b))
                    as Box<dyn Fn(&Matrix, &Matrix) -> (f64, Matrix)>,
            ),
            ("huber", Box::new(|a: &Matrix, b: &Matrix| huber(a, b, 0.5))),
        ] {
            let (_, g) = f(&p, &t);
            for i in 0..2 {
                let mut pp = p.clone();
                pp.data_mut()[i] += eps;
                let mut pm = p.clone();
                pm.data_mut()[i] -= eps;
                let numeric = (f(&pp, &t).0 - f(&pm, &t).0) / (2.0 * eps);
                assert!(
                    (numeric - g.data()[i]).abs() < 1e-5,
                    "{name}[{i}]: {numeric} vs {}",
                    g.data()[i]
                );
            }
        }
    }
}

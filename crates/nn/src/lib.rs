//! # greennfv-nn — minimal dense neural networks with manual backprop
//!
//! The GreenNFV paper trains its DDPG actor/critic with TensorFlow; this
//! crate replaces that dependency with a small, fully tested MLP stack:
//! row-major matrices, dense layers with cached-state backprop, ReLU/tanh/
//! sigmoid activations, MSE/Huber losses, SGD and Adam optimizers, Polyak
//! soft updates for target networks, and serde-serializable weights.
//!
//! Gradients are verified against finite differences in the test suite.
//!
//! ```
//! use greennfv_nn::prelude::*;
//!
//! let mut net = Mlp::two_hidden(4, 32, 2, Activation::Tanh, 42);
//! let action = net.infer_one(&[0.1, 0.5, -0.3, 0.9]);
//! assert_eq!(action.len(), 2);
//! assert!(action.iter().all(|a| a.abs() <= 1.0));
//! # let _ = net.forward(&Matrix::row(vec![0.0; 4]));
//! ```

#![warn(missing_docs)]

pub mod activation;
pub mod init;
pub mod layer;
pub mod loss;
pub mod matrix;
pub mod mlp;
pub mod optim;

/// Common imports.
pub mod prelude {
    pub use crate::activation::Activation;
    pub use crate::init::{Init, Initializer};
    pub use crate::layer::Dense;
    pub use crate::loss::{huber, mse};
    pub use crate::matrix::Matrix;
    pub use crate::mlp::Mlp;
    pub use crate::optim::{Adam, Sgd};
}

//! Dense row-major matrix with the small set of operations an MLP needs.
//!
//! The three matmul variants are the training hot loop of every DDPG/DQN
//! update. `matmul` and `transpose_a_matmul` stream contiguous axpy rows
//! (already wide: the compiler vectorizes the element-wise inner loops),
//! but `matmul_transpose_b` — the forward/inference op `x · Wᵀ` — reduces
//! each output element through a single serial accumulator chain, so it is
//! bound by float-add latency, not throughput. It therefore runs a
//! wide-lane blocked micro-kernel: `WIDTH` (8) output columns at a time, each
//! with its *own* scalar accumulator walked in ascending-`k` order. Blocking
//! across output columns never touches the reduction order of any single
//! element, so the kernel is bit-identical to the naive dot loop —
//! [`Matrix::matmul_transpose_b_naive`] keeps the reference implementation
//! alive and the differential tests (here and in `tests/` of the workspace)
//! pin blocked == naive exactly over shapes 1..=64.

use serde::{Deserialize, Serialize};

/// Output columns per blocked micro-kernel step of
/// [`Matrix::matmul_transpose_b`]: eight independent accumulator chains
/// saturate the FMA pipes where one serial chain stalls on add latency.
const WIDTH: usize = 8;

/// A dense row-major `rows × cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a row-major data vector.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must be rows*cols");
        Self { rows, cols, data }
    }

    /// Builds a 1×n row vector.
    pub fn row(data: Vec<f64>) -> Self {
        let cols = data.len();
        Self {
            rows: 1,
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Raw row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// One row as a slice.
    pub fn row_slice(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self · other` (rows×cols) · (cols×n) → rows×n.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must match");
        let mut out = Matrix::zeros(self.rows, other.cols);
        // ikj loop order: streams over `other` rows for cache friendliness.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let orow = &other.data[k * other.cols..(k + 1) * other.cols];
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · otherᵀ` (rows×cols) · (n×cols)ᵀ → rows×n.
    ///
    /// Runs the `WIDTH`-column (8-wide) blocked micro-kernel (see the module
    /// docs):
    /// bit-identical to [`Self::matmul_transpose_b_naive`] because every
    /// output element still accumulates its products in ascending-`k` order
    /// through its own scalar accumulator — blocking only interleaves
    /// *independent* chains.
    pub fn matmul_transpose_b(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "inner dimensions must match");
        let mut out = Matrix::zeros(self.rows, other.rows);
        let cols = self.cols;
        let n = other.rows;
        for i in 0..self.rows {
            let arow = &self.data[i * cols..(i + 1) * cols];
            let out_row = &mut out.data[i * n..(i + 1) * n];
            let mut j = 0;
            while j + WIDTH <= n {
                // Eight B rows, eight independent accumulators, one shared
                // walk over k. Each `acc[jj]` sees exactly the adds the
                // naive dot loop performs, in the same order.
                let rows: [&[f64]; WIDTH] =
                    std::array::from_fn(|jj| &other.data[(j + jj) * cols..(j + jj + 1) * cols]);
                let mut acc = [0.0f64; WIDTH];
                for (k, &a) in arow.iter().enumerate() {
                    for (jj, slot) in acc.iter_mut().enumerate() {
                        *slot += a * rows[jj][k];
                    }
                }
                out_row[j..j + WIDTH].copy_from_slice(&acc);
                j += WIDTH;
            }
            for (jj, slot) in out_row.iter_mut().enumerate().skip(j) {
                let brow = &other.data[jj * cols..(jj + 1) * cols];
                let mut acc = 0.0;
                for (&a, &b) in arow.iter().zip(brow) {
                    acc += a * b;
                }
                *slot = acc;
            }
        }
        out
    }

    /// Reference (unblocked) implementation of
    /// [`Self::matmul_transpose_b`]: one serial dot product per output
    /// element. Kept public so the differential tests and the
    /// `nn_matmul/{blocked,naive}` bench pair can pin the blocked kernel
    /// bit-equal and measurably faster.
    pub fn matmul_transpose_b_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "inner dimensions must match");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let arow = &self.data[i * self.cols..(i + 1) * self.cols];
            for j in 0..other.rows {
                let brow = &other.data[j * other.cols..(j + 1) * other.cols];
                let mut acc = 0.0;
                for (&a, &b) in arow.iter().zip(brow) {
                    acc += a * b;
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        out
    }

    /// `selfᵀ · other` (rows×cols)ᵀ · (rows×n) → cols×n.
    pub fn transpose_a_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "outer dimensions must match");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            let arow = &self.data[r * self.cols..(r + 1) * self.cols];
            let brow = &other.data[r * other.cols..(r + 1) * other.cols];
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let orow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Adds a row vector to every row (bias broadcast).
    pub fn add_row_broadcast(&mut self, bias: &[f64]) {
        assert_eq!(bias.len(), self.cols);
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (x, &b) in row.iter_mut().zip(bias) {
                *x += b;
            }
        }
    }

    /// Column sums (used for bias gradients).
    pub fn col_sums(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (o, &x) in out.iter_mut().zip(self.row_slice(r)) {
                *o += x;
            }
        }
        out
    }

    /// In-place `self = self * a + other * b`.
    pub fn scale_add(&mut self, a: f64, other: &Matrix, b: f64) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        for (x, &y) in self.data.iter_mut().zip(&other.data) {
            *x = *x * a + y * b;
        }
    }

    /// Applies `f` elementwise.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f64]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_known_values() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_transpose_b_matches_explicit() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(2, 3, &[1.0, 0.0, 1.0, 0.0, 1.0, 0.0]);
        // a · bᵀ
        let c = a.matmul_transpose_b(&b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_eq!(c.get(0, 0), 4.0); // 1+0+3
        assert_eq!(c.get(0, 1), 2.0);
        assert_eq!(c.get(1, 0), 10.0);
        assert_eq!(c.get(1, 1), 5.0);
    }

    #[test]
    fn transpose_a_matmul_matches_explicit() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = m(2, 2, &[5.0, 6.0, 7.0, 8.0]);
        // aᵀ · b = [[1,3],[2,4]]·[[5,6],[7,8]] = [[26,30],[38,44]]
        let c = a.transpose_a_matmul(&b);
        assert_eq!(c.data(), &[26.0, 30.0, 38.0, 44.0]);
    }

    #[test]
    fn bias_broadcast_and_col_sums() {
        let mut a = Matrix::zeros(3, 2);
        a.add_row_broadcast(&[1.0, 2.0]);
        assert_eq!(a.col_sums(), vec![3.0, 6.0]);
    }

    #[test]
    fn scale_add_lerp() {
        let mut a = m(1, 2, &[1.0, 2.0]);
        let b = m(1, 2, &[3.0, 4.0]);
        a.scale_add(0.5, &b, 0.5);
        assert_eq!(a.data(), &[2.0, 3.0]);
    }

    /// Deterministic pseudo-random fill with a sprinkling of exact zeros
    /// (exercising the sparse-skip paths) and negative values.
    fn filled(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let data: Vec<f64> = (0..rows * cols)
            .map(|_| {
                let r = next();
                if r % 5 == 0 {
                    0.0
                } else {
                    (r % 2000) as f64 / 487.0 - 2.0
                }
            })
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    #[test]
    fn blocked_matmul_transpose_b_is_bit_equal_to_naive() {
        // Every inner dimension 1..=64 (the DDPG shapes), output-column
        // counts straddling the WIDTH boundary, rectangular rows.
        for k in 1..=64usize {
            let rows = 1 + k % 5;
            for n in [1, 7, 8, 9, 15, 16, 17, 63, 64] {
                let a = filled(rows, k, (k * 64 + n) as u64);
                let b = filled(n, k, (k * 131 + n) as u64);
                let blocked = a.matmul_transpose_b(&b);
                let naive = a.matmul_transpose_b_naive(&b);
                assert_eq!(blocked.rows(), naive.rows());
                assert_eq!(blocked.cols(), naive.cols());
                for (x, y) in blocked.data().iter().zip(naive.data()) {
                    assert_eq!(x.to_bits(), y.to_bits(), "k={k} n={n}");
                }
            }
        }
    }

    #[test]
    fn matmul_variants_match_dot_order_reference() {
        // `matmul` (ikj + zero-skip) and `transpose_a_matmul` (r-order axpy)
        // must equal a plain ascending-k dot per output element: per-element
        // accumulation order is identical, and the zero-skip only elides
        // `+ 0.0` terms onto a non-negative-zero accumulator.
        for n in [1usize, 2, 3, 5, 7, 8, 9, 16, 17, 31, 33, 64] {
            let a = filled(n, n + 1, n as u64);
            let b = filled(n + 1, n.max(2), 1000 + n as u64);
            let got = a.matmul(&b);
            for i in 0..got.rows() {
                for j in 0..got.cols() {
                    let mut acc = 0.0;
                    for k in 0..a.cols() {
                        acc += a.get(i, k) * b.get(k, j);
                    }
                    assert_eq!(got.get(i, j).to_bits(), acc.to_bits(), "matmul n={n}");
                }
            }
            // aᵀ · d, with d sharing a's row count.
            let d = filled(n, n.max(2), 2000 + n as u64);
            let got_t = a.transpose_a_matmul(&d);
            for i in 0..got_t.rows() {
                for j in 0..got_t.cols() {
                    let mut acc = 0.0;
                    for r in 0..a.rows() {
                        acc += a.get(r, i) * d.get(r, j);
                    }
                    assert_eq!(
                        got_t.get(i, j).to_bits(),
                        acc.to_bits(),
                        "transpose_a_matmul n={n}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn norm_and_map() {
        let mut a = m(1, 2, &[3.0, 4.0]);
        assert!((a.norm() - 5.0).abs() < 1e-12);
        a.map_inplace(|x| x * 2.0);
        assert_eq!(a.data(), &[6.0, 8.0]);
    }
}

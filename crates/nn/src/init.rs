//! Weight initialization schemes.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::matrix::Matrix;

/// Initialization scheme for dense-layer weights.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Init {
    /// Xavier/Glorot uniform: U(±√(6/(fan_in+fan_out))) — good for tanh.
    XavierUniform,
    /// He/Kaiming uniform: U(±√(6/fan_in)) — good for ReLU.
    HeUniform,
    /// Small uniform range, as DDPG uses for its output layers (±3e-3).
    SmallUniform(f64),
}

/// A seeded weight initializer.
#[derive(Debug)]
pub struct Initializer {
    rng: StdRng,
}

impl Initializer {
    /// Creates an initializer from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Samples a weight matrix of shape `out × in` under `scheme`.
    pub fn weights(&mut self, out_dim: usize, in_dim: usize, scheme: Init) -> Matrix {
        let bound = match scheme {
            Init::XavierUniform => (6.0 / (in_dim + out_dim) as f64).sqrt(),
            Init::HeUniform => (6.0 / in_dim as f64).sqrt(),
            Init::SmallUniform(b) => b,
        };
        let mut m = Matrix::zeros(out_dim, in_dim);
        for v in m.data_mut() {
            *v = self.rng.random_range(-bound..bound);
        }
        m
    }

    /// Samples a bias vector of length `out` (zeros except SmallUniform).
    pub fn biases(&mut self, out_dim: usize, scheme: Init) -> Vec<f64> {
        match scheme {
            Init::SmallUniform(b) => (0..out_dim).map(|_| self.rng.random_range(-b..b)).collect(),
            _ => vec![0.0; out_dim],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_within_bound() {
        let mut init = Initializer::new(1);
        let w = init.weights(32, 32, Init::XavierUniform);
        let bound = (6.0 / 64.0f64).sqrt();
        assert!(w.data().iter().all(|&x| x.abs() <= bound));
        // Not degenerate.
        assert!(w.norm() > 0.0);
    }

    #[test]
    fn he_bound_depends_on_fan_in() {
        let mut init = Initializer::new(2);
        let w = init.weights(4, 100, Init::HeUniform);
        assert!(w.data().iter().all(|&x| x.abs() <= (6.0f64 / 100.0).sqrt()));
    }

    #[test]
    fn small_uniform_is_small() {
        let mut init = Initializer::new(3);
        let w = init.weights(4, 4, Init::SmallUniform(3e-3));
        assert!(w.data().iter().all(|&x| x.abs() <= 3e-3));
        let b = init.biases(4, Init::SmallUniform(3e-3));
        assert!(b.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = Initializer::new(7);
        let mut b = Initializer::new(7);
        assert_eq!(
            a.weights(8, 8, Init::XavierUniform),
            b.weights(8, 8, Init::XavierUniform)
        );
    }

    #[test]
    fn default_biases_are_zero() {
        let mut init = Initializer::new(4);
        assert!(init.biases(5, Init::HeUniform).iter().all(|&x| x == 0.0));
    }
}

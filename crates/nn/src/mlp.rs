//! Multi-layer perceptron: a stack of dense layers.

use serde::{Deserialize, Serialize};

use crate::activation::Activation;
use crate::init::{Init, Initializer};
use crate::layer::Dense;
use crate::matrix::Matrix;

/// A feed-forward network of dense layers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Builds an MLP from explicit layer sizes and activations.
    ///
    /// `sizes = [in, h1, h2, out]` with `activations.len() == sizes.len()-1`.
    /// Hidden layers use He init for ReLU / Xavier otherwise; the final layer
    /// uses DDPG's small-uniform init so initial outputs are near zero.
    pub fn new(sizes: &[usize], activations: &[Activation], seed: u64) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        assert_eq!(
            activations.len(),
            sizes.len() - 1,
            "one activation per layer"
        );
        let mut init = Initializer::new(seed);
        let mut layers = Vec::with_capacity(activations.len());
        for (i, &act) in activations.iter().enumerate() {
            let last = i == activations.len() - 1;
            let scheme = if last {
                Init::SmallUniform(3e-3)
            } else if act == Activation::Relu {
                Init::HeUniform
            } else {
                Init::XavierUniform
            };
            layers.push(Dense::new(sizes[i], sizes[i + 1], act, &mut init, scheme));
        }
        Self { layers }
    }

    /// Standard two-hidden-layer ReLU network with the given head activation.
    pub fn two_hidden(
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        head: Activation,
        seed: u64,
    ) -> Self {
        Self::new(
            &[in_dim, hidden, hidden, out_dim],
            &[Activation::Relu, Activation::Relu, head],
            seed,
        )
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Layer access for optimizers.
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Mutable layer access for optimizers.
    pub fn layers_mut(&mut self) -> &mut [Dense] {
        &mut self.layers
    }

    /// Total parameter count.
    pub fn param_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.weights().rows() * l.weights().cols() + l.bias().len())
            .sum()
    }

    /// Training forward pass (caches per-layer state).
    pub fn forward(&mut self, input: &Matrix) -> Matrix {
        let mut x = input.clone();
        for l in &mut self.layers {
            x = l.forward(&x);
        }
        x
    }

    /// Inference forward pass (no caching, immutable).
    pub fn infer(&self, input: &Matrix) -> Matrix {
        let mut x = input.clone();
        for l in &self.layers {
            x = l.infer(&x);
        }
        x
    }

    /// Convenience single-sample inference.
    pub fn infer_one(&self, input: &[f64]) -> Vec<f64> {
        self.infer(&Matrix::row(input.to_vec())).data().to_vec()
    }

    /// Backward pass from `dL/dy`; stores parameter grads in each layer and
    /// returns `dL/dx` at the network input.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let mut g = grad_out.clone();
        for l in self.layers.iter_mut().rev() {
            g = l.backward(&g);
        }
        g
    }

    /// Polyak soft update of every layer from `src` (target networks).
    pub fn soft_update_from(&mut self, src: &Mlp, tau: f64) {
        assert_eq!(self.layers.len(), src.layers.len());
        for (dst, s) in self.layers.iter_mut().zip(&src.layers) {
            dst.soft_update_from(s, tau);
        }
    }

    /// Hard copy of parameters from `src`.
    pub fn copy_from(&mut self, src: &Mlp) {
        assert_eq!(self.layers.len(), src.layers.len());
        for (dst, s) in self.layers.iter_mut().zip(&src.layers) {
            dst.copy_from(s);
        }
    }

    /// Serializes parameters to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("MLP serializes")
    }

    /// Restores a network from [`Mlp::to_json`] output.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_param_count() {
        let net = Mlp::two_hidden(4, 8, 2, Activation::Tanh, 1);
        assert_eq!(net.in_dim(), 4);
        assert_eq!(net.out_dim(), 2);
        assert_eq!(net.num_layers(), 3);
        assert_eq!(net.param_count(), 4 * 8 + 8 + 8 * 8 + 8 + 8 * 2 + 2);
    }

    #[test]
    fn tanh_head_bounds_outputs() {
        let net = Mlp::two_hidden(3, 16, 2, Activation::Tanh, 2);
        let y = net.infer_one(&[10.0, -10.0, 5.0]);
        assert!(y.iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn forward_and_infer_agree() {
        let mut net = Mlp::two_hidden(3, 8, 1, Activation::Identity, 3);
        let x = Matrix::from_vec(2, 3, vec![0.1, 0.2, 0.3, -0.1, -0.2, -0.3]);
        let a = net.forward(&x);
        let b = net.infer(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn end_to_end_gradient_check() {
        // Loss = sum(outputs); verify dL/dx through the whole stack.
        let mut net = Mlp::new(&[3, 5, 2], &[Activation::Tanh, Activation::Identity], 7);
        let x = Matrix::from_vec(1, 3, vec![0.4, -0.7, 0.2]);
        let y = net.forward(&x);
        let ones = Matrix::from_vec(1, y.cols(), vec![1.0; y.cols()]);
        let gx = net.backward(&ones);
        let eps = 1e-6;
        for c in 0..3 {
            let mut xp = x.clone();
            xp.set(0, c, x.get(0, c) + eps);
            let mut xm = x.clone();
            xm.set(0, c, x.get(0, c) - eps);
            let numeric: f64 = (net.infer(&xp).data().iter().sum::<f64>()
                - net.infer(&xm).data().iter().sum::<f64>())
                / (2.0 * eps);
            assert!(
                (numeric - gx.get(0, c)).abs() < 1e-5,
                "dX[{c}]: {numeric} vs {}",
                gx.get(0, c)
            );
        }
    }

    #[test]
    fn mlp_learns_xor_with_sgd() {
        let mut net = Mlp::new(&[2, 8, 1], &[Activation::Tanh, Activation::Sigmoid], 11);
        let inputs = [[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]];
        let targets = [0.0, 1.0, 1.0, 0.0];
        for _ in 0..4000 {
            for (x, &t) in inputs.iter().zip(&targets) {
                let xm = Matrix::row(x.to_vec());
                let y = net.forward(&xm);
                let grad = Matrix::row(vec![2.0 * (y.get(0, 0) - t)]);
                net.backward(&grad);
                for l in net.layers_mut() {
                    l.sgd_step(0.5);
                }
            }
        }
        for (x, &t) in inputs.iter().zip(&targets) {
            let y = net.infer_one(x)[0];
            assert!((y - t).abs() < 0.2, "XOR({x:?}) = {y}, want {t}");
        }
    }

    #[test]
    fn soft_update_tau_one_copies() {
        let a = Mlp::two_hidden(3, 4, 1, Activation::Identity, 5);
        let mut b = Mlp::two_hidden(3, 4, 1, Activation::Identity, 6);
        b.soft_update_from(&a, 1.0);
        let x = [0.2, 0.4, -0.6];
        assert_eq!(a.infer_one(&x), b.infer_one(&x));
    }

    #[test]
    fn json_roundtrip_preserves_behaviour() {
        let net = Mlp::two_hidden(4, 8, 3, Activation::Tanh, 9);
        let restored = Mlp::from_json(&net.to_json()).unwrap();
        let x = [0.1, -0.5, 0.9, 0.0];
        assert_eq!(net.infer_one(&x), restored.infer_one(&x));
    }

    #[test]
    #[should_panic(expected = "one activation per layer")]
    fn mismatched_activations_panic() {
        let _ = Mlp::new(&[2, 3, 1], &[Activation::Relu], 1);
    }
}

//! Dense (fully connected) layer with cached forward state and manual backprop.

use serde::{Deserialize, Serialize};

use crate::activation::Activation;
use crate::init::{Init, Initializer};
use crate::matrix::Matrix;

/// A dense layer: `y = act(x · Wᵀ + b)`.
///
/// Weights are `out × in`. `forward` caches the input and output needed by
/// `backward`, which produces parameter gradients and the gradient w.r.t. the
/// layer input (so gradients can flow to earlier layers, and — for DDPG —
/// through the critic into the action).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    weights: Matrix,
    bias: Vec<f64>,
    activation: Activation,
    // Cached forward state (not serialized).
    #[serde(skip)]
    last_input: Option<Matrix>,
    #[serde(skip)]
    last_output: Option<Matrix>,
    // Accumulated gradients.
    #[serde(skip)]
    grad_w: Option<Matrix>,
    #[serde(skip)]
    grad_b: Option<Vec<f64>>,
}

impl Dense {
    /// Creates a layer with the given initialization.
    pub fn new(
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
        init: &mut Initializer,
        scheme: Init,
    ) -> Self {
        Self {
            weights: init.weights(out_dim, in_dim, scheme),
            bias: init.biases(out_dim, scheme),
            activation,
            last_input: None,
            last_output: None,
            grad_w: None,
            grad_b: None,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.weights.cols()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.weights.rows()
    }

    /// The activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Immutable weight access.
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Mutable weight access (used by optimizers and soft updates).
    pub fn weights_mut(&mut self) -> &mut Matrix {
        &mut self.weights
    }

    /// Immutable bias access.
    pub fn bias(&self) -> &[f64] {
        &self.bias
    }

    /// Mutable bias access.
    pub fn bias_mut(&mut self) -> &mut [f64] {
        &mut self.bias
    }

    /// Forward pass over a batch (`batch × in`), caching state for backward.
    pub fn forward(&mut self, input: &Matrix) -> Matrix {
        let mut z = input.matmul_transpose_b(&self.weights); // batch × out
        z.add_row_broadcast(&self.bias);
        let act = self.activation;
        z.map_inplace(|x| act.apply(x));
        self.last_input = Some(input.clone());
        self.last_output = Some(z.clone());
        z
    }

    /// Inference-only forward pass (no caching).
    pub fn infer(&self, input: &Matrix) -> Matrix {
        let mut z = input.matmul_transpose_b(&self.weights);
        z.add_row_broadcast(&self.bias);
        let act = self.activation;
        z.map_inplace(|x| act.apply(x));
        z
    }

    /// Backward pass: takes `dL/dy` (`batch × out`), stores `dL/dW`, `dL/db`,
    /// and returns `dL/dx` (`batch × in`).
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let input = self
            .last_input
            .as_ref()
            .expect("backward called before forward");
        let output = self
            .last_output
            .as_ref()
            .expect("backward called before forward");
        // dL/dz = dL/dy ⊙ act'(z), with act' from cached outputs. One flat
        // element-wise sweep over the backing data (same values, same
        // order as the former per-(r,c) get/set loop, minus the indexing).
        let mut dz = grad_out.clone();
        let act = self.activation;
        for (g, &y) in dz.data_mut().iter_mut().zip(output.data()) {
            *g *= act.derivative_from_output(y);
        }
        // dW = dzᵀ · x  (out × in); db = column sums of dz.
        let grad_w = dz.transpose_a_matmul(input);
        let grad_b = dz.col_sums();
        // dX = dz · W (batch × in).
        let grad_in = dz.matmul(&self.weights);
        self.grad_w = Some(grad_w);
        self.grad_b = Some(grad_b);
        grad_in
    }

    /// Gradients from the last backward pass, if any.
    pub fn grads(&self) -> Option<(&Matrix, &[f64])> {
        match (&self.grad_w, &self.grad_b) {
            (Some(w), Some(b)) => Some((w, b.as_slice())),
            _ => None,
        }
    }

    /// Split-borrow view for optimizers: mutable parameters alongside the
    /// immutable gradients from the last backward pass. Lets an optimizer
    /// step read gradients and write parameters in one pass without cloning
    /// the gradient matrices (they are disjoint fields of the layer).
    pub fn params_grads_mut(&mut self) -> Option<(&mut Matrix, &mut [f64], &Matrix, &[f64])> {
        match (&self.grad_w, &self.grad_b) {
            (Some(gw), Some(gb)) => Some((&mut self.weights, &mut self.bias, gw, gb)),
            _ => None,
        }
    }

    /// Applies a raw SGD step `θ ← θ − lr · ∇θ` (used directly in tests;
    /// real training goes through `optim`).
    pub fn sgd_step(&mut self, lr: f64) {
        if let (Some(gw), Some(gb)) = (&self.grad_w, &self.grad_b) {
            self.weights.scale_add(1.0, gw, -lr);
            for (b, g) in self.bias.iter_mut().zip(gb) {
                *b -= lr * g;
            }
        }
    }

    /// Polyak soft update: `θ ← τ·θ_src + (1−τ)·θ` (paper Algorithm 2 l.9-10).
    pub fn soft_update_from(&mut self, src: &Dense, tau: f64) {
        self.weights.scale_add(1.0 - tau, &src.weights, tau);
        for (b, s) in self.bias.iter_mut().zip(&src.bias) {
            *b = (1.0 - tau) * *b + tau * s;
        }
    }

    /// Copies parameters from another layer.
    pub fn copy_from(&mut self, src: &Dense) {
        self.weights = src.weights.clone();
        self.bias = src.bias.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(act: Activation) -> Dense {
        let mut init = Initializer::new(42);
        Dense::new(3, 2, act, &mut init, Init::XavierUniform)
    }

    #[test]
    fn forward_shape() {
        let mut l = layer(Activation::Relu);
        let x = Matrix::from_vec(4, 3, vec![0.1; 12]);
        let y = l.forward(&x);
        assert_eq!(y.rows(), 4);
        assert_eq!(y.cols(), 2);
    }

    #[test]
    fn infer_matches_forward() {
        let mut l = layer(Activation::Tanh);
        let x = Matrix::from_vec(2, 3, vec![0.3, -0.1, 0.7, 0.2, 0.5, -0.4]);
        let y1 = l.forward(&x);
        let y2 = l.infer(&x);
        assert_eq!(y1, y2);
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_requires_forward() {
        let mut l = layer(Activation::Relu);
        let g = Matrix::zeros(1, 2);
        let _ = l.backward(&g);
    }

    /// Finite-difference check of all gradients: weights, biases, and inputs.
    #[test]
    fn gradients_match_finite_differences() {
        for act in [Activation::Identity, Activation::Tanh, Activation::Sigmoid] {
            let mut l = layer(act);
            let x = Matrix::from_vec(2, 3, vec![0.5, -0.2, 0.8, -0.6, 0.1, 0.4]);
            // Loss = sum of outputs; dL/dy = ones.
            let y = l.forward(&x);
            let ones = Matrix::from_vec(y.rows(), y.cols(), vec![1.0; y.rows() * y.cols()]);
            let grad_in = l.backward(&ones);
            let (gw, gb) = l.grads().map(|(w, b)| (w.clone(), b.to_vec())).unwrap();

            let eps = 1e-6;
            let loss = |l: &Dense, x: &Matrix| -> f64 { l.infer(x).data().iter().sum() };

            // Weight gradients.
            for r in 0..gw.rows() {
                for c in 0..gw.cols() {
                    let mut lp = l.clone();
                    let wp = lp.weights().get(r, c) + eps;
                    lp.weights_mut().set(r, c, wp);
                    let mut lm = l.clone();
                    let wm = lm.weights().get(r, c) - eps;
                    lm.weights_mut().set(r, c, wm);
                    let numeric = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * eps);
                    assert!(
                        (numeric - gw.get(r, c)).abs() < 1e-5,
                        "{act:?} dW[{r},{c}]: numeric {numeric} vs {}",
                        gw.get(r, c)
                    );
                }
            }
            // Bias gradients.
            for (i, &gbi) in gb.iter().enumerate() {
                let mut lp = l.clone();
                lp.bias_mut()[i] += eps;
                let mut lm = l.clone();
                lm.bias_mut()[i] -= eps;
                let numeric = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * eps);
                assert!((numeric - gbi).abs() < 1e-5, "{act:?} db[{i}]");
            }
            // Input gradients.
            for r in 0..x.rows() {
                for c in 0..x.cols() {
                    let mut xp = x.clone();
                    xp.set(r, c, x.get(r, c) + eps);
                    let mut xm = x.clone();
                    xm.set(r, c, x.get(r, c) - eps);
                    let numeric = (loss(&l, &xp) - loss(&l, &xm)) / (2.0 * eps);
                    assert!(
                        (numeric - grad_in.get(r, c)).abs() < 1e-5,
                        "{act:?} dX[{r},{c}]"
                    );
                }
            }
        }
    }

    #[test]
    fn sgd_step_reduces_simple_loss() {
        let mut init = Initializer::new(1);
        let mut l = Dense::new(1, 1, Activation::Identity, &mut init, Init::XavierUniform);
        // Fit y = 2x from one sample, minimizing (y - 2)^2 at x = 1.
        let x = Matrix::row(vec![1.0]);
        let mut last_err = f64::INFINITY;
        for _ in 0..200 {
            let y = l.forward(&x);
            let err = (y.get(0, 0) - 2.0).powi(2);
            assert!(err <= last_err + 1e-9, "loss must not increase");
            last_err = err;
            let grad = Matrix::row(vec![2.0 * (y.get(0, 0) - 2.0)]);
            l.backward(&grad);
            l.sgd_step(0.1);
        }
        assert!(last_err < 1e-6);
    }

    #[test]
    fn soft_update_interpolates() {
        let mut a = layer(Activation::Identity);
        let b = layer(Activation::Identity);
        let mut target = a.clone();
        target.soft_update_from(&b, 1.0);
        assert_eq!(target.weights(), b.weights());
        a.soft_update_from(&b, 0.0);
        // tau = 0 leaves parameters unchanged.
        assert_eq!(a.weights(), layer(Activation::Identity).weights());
    }

    #[test]
    fn serde_roundtrip_preserves_params() {
        let l = layer(Activation::Tanh);
        let json = serde_json::to_string(&l).unwrap();
        let l2: Dense = serde_json::from_str(&json).unwrap();
        assert_eq!(l.weights(), l2.weights());
        assert_eq!(l.bias(), l2.bias());
    }
}

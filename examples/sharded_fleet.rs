//! Multi-process sharded execution: lowers the `sharded-fleet` registry
//! scenario (6 mixed-profile nodes, `shards: 2`) into a [`ShardedCluster`],
//! runs the same horizon fused in-process, and checks the two report
//! streams are bit-identical — the coordinator's node-order merge is
//! exact, not approximate. Also shows the composed per-shard checkpoint
//! cursors surviving a kill-and-resume split mid-horizon.
//!
//! ```text
//! cargo build --release && cargo run --release --example sharded_fleet
//! ```
//!
//! (The `cargo build` matters: the coordinator spawns the `shard_worker`
//! binary it finds next to this example in `target/release/`.)

use greennfv::prelude::*;

fn main() {
    let scenario = Scenario::by_name("sharded-fleet").expect("registry scenario");
    let horizon = scenario.epochs as usize;
    println!(
        "scenario `{}`: {} nodes across {} worker processes, {} epochs",
        scenario.name,
        scenario.nodes.len(),
        scenario.shards,
        horizon
    );

    // Fused reference: one process, one cluster, the ordinary epoch loop.
    let mut fused = scenario.build_cluster().expect("scenario builds");
    let fused_reports = fused.run_epochs(horizon);

    // Sharded: nodes [0,3) and [3,6) each run in their own worker process;
    // per-epoch report frames stream back and merge in node order.
    let mut sharded = scenario.build_sharded().expect("worker binary resolves");
    let sharded_reports = sharded.run_epochs(horizon).expect("workers complete");
    assert_eq!(
        fused_reports, sharded_reports,
        "sharded merge must be bit-identical to the fused run"
    );
    println!(
        "bit-equal: {} merged reports match the fused run exactly",
        sharded_reports.len()
    );

    // Checkpoint/resume composes per-shard: stop after half the horizon,
    // capture every worker's traffic cursors, rebuild, restore, continue.
    let split = horizon / 2;
    let mut first = scenario.build_sharded().expect("worker binary resolves");
    let mut resumed_reports = first.run_epochs(split).expect("workers complete");
    let cursors = first.cursors().expect("cursors captured").to_vec();

    let mut second = scenario.build_sharded().expect("worker binary resolves");
    second
        .restore_cursors(cursors)
        .expect("cursor count matches the fleet");
    resumed_reports.extend(
        second
            .run_epochs(horizon - split)
            .expect("workers complete"),
    );
    assert_eq!(
        fused_reports, resumed_reports,
        "kill-and-resume must land on the same reports"
    );
    println!(
        "resume: {split}+{} epochs across fresh workers match too",
        horizon - split
    );
}

//! Dynamic workloads: drives controllers through diurnal and flash-crowd
//! traffic schedules and compares how they adapt — the behaviour that
//! motivates GreenNFV's learning-based design.
//!
//! ```text
//! cargo run --release --example dynamic_workload
//! ```

use greennfv::prelude::*;
use greennfv::report::table;
use nfv_sim::prelude::*;

fn main() {
    for schedule in [WorkloadSchedule::diurnal(), WorkloadSchedule::flash_crowd()] {
        println!("== schedule: {} ==", schedule.name);
        let mut rows = Vec::new();
        let mut base = BaselineController;
        let mut heur = HeuristicController::default();
        let mut ee = EePstateController::default();
        let runs = [
            run_schedule(
                &mut base,
                &schedule,
                SimTuning::default(),
                PowerModel::default(),
                42,
            ),
            run_schedule(
                &mut heur,
                &schedule,
                SimTuning::default(),
                PowerModel::default(),
                42,
            ),
            run_schedule(
                &mut ee,
                &schedule,
                SimTuning::default(),
                PowerModel::default(),
                42,
            ),
        ];
        for r in &runs {
            for p in &r.phases {
                rows.push(vec![
                    r.controller.clone(),
                    p.label.clone(),
                    format!("{:.2}", p.offered_gbps),
                    format!("{:.2}", p.mean_throughput_gbps),
                    format!("{:.0}", p.mean_energy_j),
                    format!("{:.2}", p.efficiency),
                ]);
            }
        }
        println!(
            "{}",
            table(
                &[
                    "Controller",
                    "Phase",
                    "Offered",
                    "Delivered",
                    "E (J)",
                    "Gbps/kJ"
                ],
                &rows
            )
        );
        // Whole-scenario energy comparison.
        for r in &runs {
            println!(
                "  {:12} mean energy {:.0} J/epoch",
                r.controller,
                r.mean_energy_j()
            );
        }
        println!();
    }
}

//! Push-mode incremental evaluation: replays the `diurnal-low-churn`
//! registry scenario (64 nodes / 192 fused lanes, under 2% of which move
//! per epoch) under `EvalMode::Full` and `EvalMode::Incremental`, checks
//! the two report streams are bit-identical, and demonstrates that a
//! killed-and-resumed incremental run lands on exactly the same reports.
//!
//! ```text
//! cargo run --release --example incremental_epochs
//! ```

use greennfv::prelude::*;
use nfv_sim::prelude::*;
use std::time::Instant;

fn main() {
    let scenario = Scenario::by_name("diurnal-low-churn").expect("registry scenario");
    let lanes: usize = scenario.nodes.iter().map(|n| n.tenants.len()).sum();
    // A long horizon is the regime incremental evaluation exists for: the
    // mandatory full priming sweep on epoch 0 amortizes away.
    let horizon = 4 * scenario.epochs as usize;
    println!(
        "scenario `{}`: {} nodes, {} fused lanes, horizon {} epochs of {:.0} s",
        scenario.name,
        scenario.nodes.len(),
        lanes,
        horizon,
        scenario.tuning.epoch_s
    );
    println!(
        "descriptor opts in via `\"evaluation\": \"incremental\"` (parsed: {:?})",
        scenario.evaluation
    );

    // Full sweep: every lane, every epoch, through the pipelined runtime.
    let mut full = scenario.build_cluster().expect("scenario builds");
    let t0 = Instant::now();
    let full_reports = full.run_epochs_eval(horizon, PipelineMode::Auto, EvalMode::Full);
    let full_dt = t0.elapsed();

    // Incremental: epoch 0 primes (full sweep + cache fill); afterwards the
    // traffic layer's bitwise `LoadDelta::Unchanged` verdicts keep the
    // plateau lanes clean, so the kernel re-runs only the dirty 8-lane
    // groups and everything else scatter-copies from the retained outputs.
    let mut inc = scenario.build_cluster().expect("scenario builds");
    let t0 = Instant::now();
    let inc_reports = inc.run_epochs_eval(horizon, PipelineMode::Auto, EvalMode::Incremental);
    let inc_dt = t0.elapsed();

    assert_eq!(
        full_reports, inc_reports,
        "incremental evaluation must be bit-identical to the full sweep"
    );
    println!(
        "full:        {:>10.2?} for {} epochs ({} lane-evaluations)",
        full_dt,
        horizon,
        horizon * lanes
    );
    println!(
        "incremental: {:>10.2?} for the same epochs, bit-identical reports ({:.2}x)",
        inc_dt,
        inc_dt.as_secs_f64() / full_dt.as_secs_f64()
    );

    // Kill/resume: run the first third, checkpoint every node's cursor as
    // JSON, drop the cluster, rebuild from the descriptor, restore, and
    // finish. Epoch 0 of the resumed run re-primes the cache, so the tail
    // reports are bit-identical to the uninterrupted stream.
    let kill_at = horizon / 3;
    let mut first = scenario.build_cluster().expect("scenario builds");
    let mut resumed_reports =
        first.run_epochs_eval(kill_at, PipelineMode::Auto, EvalMode::Incremental);
    let cursors: Vec<String> = (0..scenario.nodes.len())
        .map(|i| {
            let cursor = first.node_mut(i).expect("node index").cursor();
            serde_json::to_string(&cursor).expect("cursor serializes")
        })
        .collect();
    drop(first); // the "kill": all cached incremental state is gone

    let mut second = scenario.build_cluster().expect("scenario builds");
    for (i, json) in cursors.iter().enumerate() {
        let cursor: NodeCursor = serde_json::from_str(json).expect("cursor round-trips");
        second
            .node_mut(i)
            .expect("node index")
            .restore_cursor(&cursor)
            .expect("cursor matches the rebuilt node");
    }
    resumed_reports.extend(second.run_epochs_eval(
        horizon - kill_at,
        PipelineMode::Auto,
        EvalMode::Incremental,
    ));
    assert_eq!(
        full_reports, resumed_reports,
        "killed-and-resumed incremental run must match the uninterrupted one"
    );
    println!("kill at epoch {kill_at} + cursor JSON round-trip + resume: still bit-identical");
}

//! Distributed Ape-X training (paper §4.3.2): three actor workers feeding a
//! central prioritized-replay learner, then deployment of the learned policy.
//!
//! ```text
//! cargo run --release --example distributed_training
//! ```

use greennfv::apex::{train_apex, ApexConfig};
use greennfv::prelude::*;

fn main() {
    let cfg = ApexConfig {
        actors: 3,
        episodes_per_actor: 120,
        seed: 2024,
        ..ApexConfig::default()
    };
    println!(
        "Ape-X: {} actors x {} episodes, central learner with prioritized replay...",
        cfg.actors, cfg.episodes_per_actor
    );
    let out = train_apex(Sla::EnergyEfficiency, &cfg);
    println!(
        "actors generated {} transitions; learner applied {} updates; training energy {:.0} kJ",
        out.actor_steps,
        out.learner_updates,
        out.training_energy_j / 1000.0
    );

    let mut policy = out.into_controller("GreenNFV(apex)");
    let result = run_controller(&mut policy, &RunConfig::paper(12, 555));
    let mut baseline = BaselineController;
    let base = run_controller(&mut baseline, &RunConfig::paper(12, 555));
    println!(
        "deployed policy: {:.2} Gbps at {:.0} J  (baseline: {:.2} Gbps at {:.0} J)",
        result.mean_throughput_gbps,
        result.mean_energy_j,
        base.mean_throughput_gbps,
        base.mean_energy_j
    );
    println!(
        "-> {:.2}x throughput, {:.0}% of baseline energy",
        result.mean_throughput_gbps / base.mean_throughput_gbps,
        result.mean_energy_j / base.mean_energy_j * 100.0
    );
}

//! Compares all three GreenNFV SLA policies against the paper's baselines —
//! a compact version of the Figure 9 experiment.
//!
//! ```text
//! cargo run --release --example sla_comparison
//! ```

use greennfv::prelude::*;
use greennfv::report::ComparisonReport;

fn main() {
    let episodes = 400;
    let eval = RunConfig::paper(15, 1234);

    println!("training 3 GreenNFV policies ({episodes} episodes each)...\n");
    let mut results = Vec::new();
    results.push(run_controller(&mut BaselineController, &eval));
    results.push(run_controller(&mut HeuristicController::default(), &eval));
    results.push(run_controller(&mut EePstateController::default(), &eval));
    for (sla, name) in [
        (Sla::paper_min_energy(), "GreenNFV(MinE)"),
        (Sla::paper_max_throughput(), "GreenNFV(MaxT)"),
        (Sla::EnergyEfficiency, "GreenNFV(EE)"),
    ] {
        let out = train(sla, &TrainConfig::quick(episodes, 5));
        let mut ctrl = out.into_controller(name);
        results.push(run_controller(&mut ctrl, &eval));
    }

    let report = ComparisonReport { results };
    println!("{}", report.render());

    for (model, claim) in [
        ("GreenNFV(MaxT)", "paper: 4.4x throughput, 33% less energy"),
        ("GreenNFV(MinE)", "paper: 3x throughput, ~half the energy"),
        ("GreenNFV(EE)", "paper: ~4x throughput at similar energy"),
    ] {
        if let (Some(t), Some(e)) = (
            report.throughput_ratio(model, "Baseline"),
            report.energy_ratio(model, "Baseline"),
        ) {
            println!(
                "{model}: measured {t:.2}x throughput at {:.0}% energy  ({claim})",
                e * 100.0
            );
        }
    }
}

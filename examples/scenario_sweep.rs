//! Runs every named scenario in the registry end-to-end and prints the
//! per-tenant outcomes plus a cross-scenario comparison: heterogeneous
//! clusters, multi-SLA tenants sharing nodes, and trace-driven diurnal
//! replay, all flowing through the fused batched engine.
//!
//! ```text
//! cargo run --release --example scenario_sweep
//! ```

use greennfv::prelude::*;

fn main() {
    let mut runs = Vec::new();
    for scenario in Scenario::registry() {
        let nodes = scenario.nodes.len();
        let tenants: usize = scenario.nodes.iter().map(|n| n.tenants.len()).sum();
        println!(
            "== scenario: {} ({} node(s), {} tenant(s), {} epochs of {:.0} s) ==",
            scenario.name, nodes, tenants, scenario.epochs, scenario.tuning.epoch_s
        );
        let run = scenario.run().expect("registry scenarios run");
        println!("{}", run.render());
        runs.push(run);
    }
    println!("== registry summary ==");
    println!("{}", scenario_comparison(&runs));
    // The descriptors are plain data: show one round-tripping through JSON.
    let sc = Scenario::by_name("two-tenant-shared-node").expect("registry name");
    let json = sc.to_json();
    let back = Scenario::from_json(&json).expect("round-trip parses");
    assert_eq!(back, sc);
    println!(
        "descriptor `{}` serializes to {} bytes of JSON and round-trips exactly",
        sc.name,
        json.len()
    );
}

//! Quickstart: simulate an NFV node, tune it by hand, then let GreenNFV
//! learn the knobs for the Energy-Efficiency SLA.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use greennfv::prelude::*;
use nfv_sim::prelude::*;

fn main() {
    // --- 1. An NFV node with the paper's canonical chain -------------------
    // firewall → NAT → IDS, fed by five UDP flows totalling ~10 Gbps.
    let mut node = Node::default_greennfv(0);
    node.add_chain(
        ChainSpec::canonical_three(ChainId(0)),
        FlowSet::evaluation_five_flows(),
        KnobSettings::baseline(),
        42,
    )
    .expect("chain fits a fresh node");

    let r = node.run_epoch();
    println!(
        "baseline knobs : {:>5.2} Gbps, {:>6.0} J/epoch, miss rate {:.2}",
        r.node.total_throughput_gbps(),
        r.node.energy_j,
        r.node.chains[0].miss_rate
    );

    // --- 2. Hand-tuned knobs ------------------------------------------------
    let tuned = KnobSettings {
        cpu: CpuAllocation {
            cores: 4,
            share: 1.0,
        },
        freq_ghz: 1.7,
        llc_fraction: 0.9,
        dma: DmaBuffer::from_mb(8.0),
        batch: 128,
    };
    node.set_knobs(ChainId(0), tuned).expect("valid knobs");
    let r = node.run_epoch();
    println!(
        "hand-tuned     : {:>5.2} Gbps, {:>6.0} J/epoch, miss rate {:.2}",
        r.node.total_throughput_gbps(),
        r.node.energy_j,
        r.node.chains[0].miss_rate
    );

    // --- 3. Let GreenNFV learn the knobs ------------------------------------
    println!("\ntraining GreenNFV for the Energy-Efficiency SLA (300 episodes)...");
    let out = train(Sla::EnergyEfficiency, &TrainConfig::quick(300, 7));
    let final_eval = out.final_eval().copied();
    let mut policy = out.into_controller("GreenNFV(EE)");
    let result = run_controller(&mut policy, &RunConfig::paper(10, 99));
    println!(
        "GreenNFV(EE)   : {:>5.2} Gbps, {:>6.0} J/epoch, {:.2} Gbps/kJ",
        result.mean_throughput_gbps, result.mean_energy_j, result.efficiency
    );
    if let Some(e) = final_eval {
        println!(
            "last training eval chose: {:.0}% CPU, {:.2} GHz, {:.0}% LLC, {:.1} MB DMA, batch {:.0}",
            e.cpu_usage_pct, e.freq_ghz, e.llc_pct, e.dma_mb, e.batch
        );
    }
}

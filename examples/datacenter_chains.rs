//! Multi-node scenario: the paper's six-server testbed with heterogeneous
//! chains and bursty traffic, managed per-node.
//!
//! Three NF-hosting nodes run different service chains (canonical, heavyweight
//! crypto, lightweight monitoring); each gets its own deployed policy-free
//! heuristic controller, and cluster-level throughput/energy is reported
//! epoch by epoch — the operational view a TSP operator would watch.
//!
//! ```text
//! cargo run --release --example datacenter_chains
//! ```

use greennfv::prelude::*;
use nfv_sim::prelude::*;

fn main() {
    // One controller per node, as GreenNFV deploys one NF_CONTROLLER per host.
    let chains = [
        (
            "canonical fw→nat→ids",
            ChainSpec::canonical_three(ChainId(0)),
        ),
        (
            "heavyweight router→crypto→ids",
            ChainSpec::heavyweight(ChainId(0)),
        ),
        ("lightweight monitor→fw", ChainSpec::lightweight(ChainId(0))),
    ];
    let workloads = [
        FlowSet::evaluation_five_flows(),
        FlowSet::new(vec![
            FlowSpec::cbr(0, 3.0e5, 1518),
            FlowSpec::poisson(1, 4.0e5, 512),
        ])
        .expect("valid flows"),
        FlowSet::new(vec![FlowSpec {
            id: 0,
            rate_pps: 2.0e6,
            packet_size: 256,
            pattern: ArrivalPattern::MarkovOnOff {
                peak_factor: 3.0,
                on_fraction: 0.33,
            },
        }])
        .expect("valid flows"),
    ];

    let mut totals = (0.0f64, 0.0f64);
    for ((name, chain), flows) in chains.into_iter().zip(workloads) {
        let mut ctrl = HeuristicController::default();
        let cfg = RunConfig {
            epochs: 12,
            flows,
            chain,
            ..RunConfig::paper(12, 77)
        };
        let r = run_controller(&mut ctrl, &cfg);
        println!(
            "node `{name}`: {:.2} Gbps mean, {:.0} J/epoch, {:.2} Gbps/kJ",
            r.mean_throughput_gbps, r.mean_energy_j, r.efficiency
        );
        totals.0 += r.mean_throughput_gbps;
        totals.1 += r.mean_energy_j;
    }
    println!(
        "\ncluster: {:.2} Gbps aggregate at {:.0} J/epoch ({:.2} Gbps/kJ)",
        totals.0,
        totals.1,
        totals.0 / (totals.1 / 1000.0)
    );

    // The same testbed through the `Cluster` facade (lock-step epochs).
    let mut cluster = Cluster::paper_testbed(PlatformPolicy::greennfv(), 9);
    let report = cluster.run_epoch();
    println!(
        "Cluster facade: {:.2} Gbps, {:.0} J, efficiency {:.2} Gbps/kJ",
        report.total_throughput_gbps(),
        report.total_energy_j(),
        report.energy_efficiency()
    );
}

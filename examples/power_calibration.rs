//! Power-model calibration (paper §4.1): fit the Eq. 4 exponent `h` against
//! the (simulated) Yokogawa WT210 power meter, then inspect the fitted
//! model's error across the utilization range.
//!
//! ```text
//! cargo run --release --example power_calibration
//! ```

use nfv_sim::prelude::*;

fn main() {
    // Ground truth: a server whose true exponent is unknown to the operator.
    let truth = PowerModel {
        h: 1.62,
        ..PowerModel::default()
    };
    let mut meter = PowerMeter::new(truth, 0.02, 7);

    // Sweep utilization levels and fit h by least squares, as the paper does.
    let fitted_h = calibrate_h(&mut meter, PowerModel::default(), 100);
    println!(
        "true h = {:.2}, fitted h = {:.2} ({} meter samples)",
        truth.h,
        fitted_h,
        meter.samples()
    );

    let fitted = PowerModel {
        h: fitted_h,
        ..PowerModel::default()
    };
    println!("\n util   true W   model W   error");
    let mut worst: f64 = 0.0;
    for i in 0..=10 {
        let u = f64::from(i) / 10.0;
        let t = truth.power_w(u, FREQ_MAX_GHZ, 1.0);
        let m = fitted.power_w(u, FREQ_MAX_GHZ, 1.0);
        let err = (m - t).abs() / t * 100.0;
        worst = worst.max(err);
        println!(" {u:4.1}   {t:6.1}   {m:7.1}   {err:4.1}%");
    }
    println!("\nworst-case model error: {worst:.2}%");

    // Show what the fitted model predicts for the three platform modes.
    println!("\npredicted epoch energy (30 s) at 70% utilization:");
    for (label, freq, frac) in [
        ("performance governor, all cores", 2.1, 1.0),
        ("1.5 GHz, all cores", 1.5, 1.0),
        ("1.5 GHz, half the cores powered", 1.5, 0.5),
    ] {
        println!(
            "  {label:36} {:7.0} J",
            fitted.energy_j(0.7, freq, frac, 30.0)
        );
    }
}

// Quick component timing for the wide kernels.
use nfv_sim::dma::{buffer_loss_lanes, mm1k_loss_lanes};
use nfv_sim::simd::{wide_exp, wide_ln, F64x8, WideLane};
use std::time::Instant;

fn time<F: FnMut() -> F64x8>(name: &str, mut f: F) {
    // warmup
    for _ in 0..10_000 {
        std::hint::black_box(f());
    }
    let n = 3_000_000u32;
    let t0 = Instant::now();
    for _ in 0..n {
        std::hint::black_box(f());
    }
    let dt = t0.elapsed().as_nanos() as f64 / n as f64;
    println!("{name}: {dt:.1} ns/bundle ({:.2} ns/lane)", dt / 8.0);
}

fn main() {
    let x = std::hint::black_box(F64x8::from_slice(&[
        0.3, 0.9, 1.4, 2.7, 0.55, 0.77, 1.01, 3.3,
    ]));
    let t = std::hint::black_box(F64x8::from_slice(&[
        -120.0, -3.0, 0.4, 5.0, -55.0, 12.0, -0.2, 88.0,
    ]));
    let k = std::hint::black_box(F64x8::splat(2574.0));
    let arr = std::hint::black_box(F64x8::splat(3.5e6));
    let cap = std::hint::black_box(F64x8::splat(3.675e6));
    let dma = std::hint::black_box(F64x8::splat(1024.0 * 1024.0));
    let pkt = std::hint::black_box(F64x8::splat(395.0));
    let burst = std::hint::black_box(F64x8::splat(1.8));
    let batch = std::hint::black_box(F64x8::splat(160.0));
    time("wide_ln ", || wide_ln(std::hint::black_box(x)));
    time("wide_exp", || wide_exp(std::hint::black_box(t)));
    time("mm1k    ", || {
        mm1k_loss_lanes(std::hint::black_box(x), std::hint::black_box(k))
    });
    time("bufloss ", || {
        buffer_loss_lanes(arr, cap, dma, pkt, burst, batch)
    });
}

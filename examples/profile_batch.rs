// Min-of-many timing for the batch kernel at the bench grid operating
// point — a low-noise companion to the criterion bench on busy hosts.
use nfv_sim::batch::{evaluate_chain_batch_threads, ChainBatch};
use nfv_sim::chain::{ChainSpec, ServiceChain};
use nfv_sim::cpu::ChainId;
use nfv_sim::engine::{
    llc_partition_bytes, pass_capacity, pass_cycles, pass_load, pass_loss, pass_miss_rate,
    pass_outputs, ChainLoad, KnobSettings, SimTuning,
};
use nfv_sim::simd::{F64x8, WideLane, WIDTH};
use std::time::Instant;

/// The fused math of the kernel over raw columns, summing outputs instead of
/// scattering results — isolates math+loads from mask/scatter/alloc.
#[allow(clippy::too_many_arguments)]
fn math_only(cols: &[Vec<f64>; 14], tuning: &SimTuning, n: usize) -> f64 {
    let [cores, share, freq, dma_bytes, batch_knob, base_cpp, cyc_byte, mem_refs, state, hops, arrival_col, mps, burst, llc] =
        cols;
    let mut acc = F64x8::splat(0.0);
    let mut j = 0;
    while j + WIDTH <= n {
        let (pkt, arrival) =
            pass_load::<F64x8>(F64x8::load(arrival_col, j), F64x8::load(mps, j), tuning);
        let miss = pass_miss_rate(
            pkt,
            arrival,
            F64x8::load(batch_knob, j),
            F64x8::load(hops, j),
            F64x8::load(state, j),
            F64x8::load(dma_bytes, j),
            F64x8::load(llc, j),
            tuning,
        );
        let cpp = pass_cycles(
            pkt,
            miss,
            F64x8::load(batch_knob, j),
            F64x8::load(hops, j),
            F64x8::load(freq, j),
            F64x8::load(base_cpp, j),
            F64x8::load(cyc_byte, j),
            F64x8::load(mem_refs, j),
            tuning,
        );
        let capacity = pass_capacity(
            cpp,
            F64x8::load(cores, j),
            F64x8::load(share, j),
            F64x8::load(freq, j),
            tuning,
        );
        let loss = pass_loss(
            arrival,
            capacity,
            F64x8::load(dma_bytes, j),
            pkt,
            F64x8::load(burst, j),
            F64x8::load(batch_knob, j),
        );
        let o = pass_outputs(
            pkt,
            arrival,
            capacity,
            loss,
            miss,
            F64x8::load(mem_refs, j),
            F64x8::load(cores, j),
            F64x8::load(share, j),
            tuning,
        );
        acc = acc + o.throughput_gbps + o.delivered_pps + o.loss_frac + o.cpu_util;
        j += WIDTH;
    }
    let mut s = 0.0;
    for k in 0..WIDTH {
        s += acc.lane(k);
    }
    s
}

fn main() {
    let cost = ServiceChain::build(ChainSpec::canonical_three(ChainId(0))).cost();
    let tuning = SimTuning::default();
    let llc = llc_partition_bytes(0.5);
    for lanes in [64usize, 1024, 16384] {
        let mut batch = ChainBatch::with_capacity(lanes);
        for i in 0..lanes as u32 {
            let mut k = KnobSettings::default_tuned();
            k.freq_ghz = 1.2 + 0.1 * f64::from(i % 8);
            k.batch = 1 + ((i / 8) % 8) * 40;
            let load = ChainLoad {
                arrival_pps: 1.0e6 + 37.0 * f64::from(i),
                mean_packet_size: 395.0,
                burstiness: 1.2,
            };
            batch.push(&k, &cost, &load, llc);
        }
        // warmup
        for _ in 0..5 {
            std::hint::black_box(evaluate_chain_batch_threads(&batch, &tuning, 1));
        }
        let reps = (2_000_000 / lanes).max(8);
        let mut best = f64::INFINITY;
        for _ in 0..12 {
            let t0 = Instant::now();
            for _ in 0..reps {
                std::hint::black_box(evaluate_chain_batch_threads(
                    std::hint::black_box(&batch),
                    &tuning,
                    1,
                ));
            }
            let per = t0.elapsed().as_nanos() as f64 / (reps * lanes) as f64;
            best = best.min(per);
        }
        println!("batch/{lanes}: {best:.2} ns/lane (min of 12 runs)");

        // Math-only twin over raw columns (no mask / scatter / alloc).
        let mut cols: [Vec<f64>; 14] = Default::default();
        for i in 0..lanes as u32 {
            let mut k = KnobSettings::default_tuned();
            k.freq_ghz = 1.2 + 0.1 * f64::from(i % 8);
            k.batch = 1 + ((i / 8) % 8) * 40;
            cols[0].push(f64::from(k.cpu.cores));
            cols[1].push(k.cpu.share);
            cols[2].push(k.freq_ghz);
            cols[3].push(k.dma.bytes as f64);
            cols[4].push(f64::from(k.batch));
            cols[5].push(cost.base_cycles_per_packet);
            cols[6].push(cost.cycles_per_byte);
            cols[7].push(cost.mem_refs_per_packet);
            cols[8].push(cost.state_bytes as f64);
            cols[9].push(f64::from(cost.hops));
            cols[10].push(1.0e6 + 37.0 * f64::from(i));
            cols[11].push(395.0);
            cols[12].push(1.2);
            cols[13].push(llc);
        }
        for _ in 0..5 {
            std::hint::black_box(math_only(&cols, &tuning, lanes));
        }
        let mut best = f64::INFINITY;
        for _ in 0..12 {
            let t0 = Instant::now();
            for _ in 0..reps {
                std::hint::black_box(math_only(std::hint::black_box(&cols), &tuning, lanes));
            }
            let per = t0.elapsed().as_nanos() as f64 / (reps * lanes) as f64;
            best = best.min(per);
        }
        println!("math /{lanes}: {best:.2} ns/lane (min of 12 runs)");
    }
}

//! Offline stand-in for `criterion`.
//!
//! Provides the macro/API surface the workspace's 12 benches use —
//! [`Criterion`], [`criterion_group!`], [`criterion_main!`],
//! `benchmark_group`, [`Throughput`], `Bencher::iter` /
//! `iter_with_setup` — backed by a simple wall-clock measurement loop:
//! each sample times a batch of iterations and the per-iteration mean,
//! min and max across samples are printed. No statistics engine or HTML
//! reports.
//!
//! Two pieces of real criterion's CLI are honored (anything else after
//! `cargo bench ... --` is ignored):
//!
//! * positional `<filter>` args — run only benchmarks whose full name
//!   contains any filter substring;
//! * `--test` — run each selected benchmark exactly once without timing
//!   (CI smoke mode), printing `ok` per benchmark.
//!
//! # Machine-readable perf records
//!
//! When the `PERF_RECORD_PATH` environment variable names a file, every
//! selected benchmark's per-iteration time is also written there as JSON at
//! process exit (see [`write_perf_record`]): one entry per bench id with
//! `ns_per_iter`, the declared [`Throughput`] element count, and the derived
//! `ns_per_element` (ns/lane for the batch benches). Timed runs record the
//! mean across samples (committed baselines are timed, and a mean baseline
//! keeps CI's best-of-N smoke comparison one-sided in the safe direction);
//! `--test` smoke runs record the *best* of five short samples — timing
//! noise is one-sided, so the minimum is the robust estimator and keeps
//! `perf_check`'s ratio gates stable on shared runners. In smoke mode the
//! record is still produced — each selected benchmark runs a short
//! calibrated measurement instead of a single untimed pass — so CI can
//! upload a perf trajectory artifact from the smoke job without paying for
//! a full benchmark run.

use std::hint::black_box;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Units for reporting per-iteration throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    filters: Vec<String>,
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo passes its own flags (e.g. `--bench`) through; honor the
        // supported subset, swallow the operands of real criterion's
        // value-taking flags (so `--save-baseline main` does not turn
        // `main` into a name filter that silently deselects every bench),
        // and treat remaining bare words as name filters.
        const VALUE_FLAGS: [&str; 9] = [
            "--save-baseline",
            "--baseline",
            "--load-baseline",
            "--sample-size",
            "--warm-up-time",
            "--measurement-time",
            "--significance-level",
            "--noise-threshold",
            "--color",
        ];
        let mut filters = Vec::new();
        let mut smoke = false;
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            if arg == "--test" {
                smoke = true;
            } else if let Some(flag) = arg.split('=').next().filter(|_| arg.starts_with('-')) {
                // `--flag=value` carries its operand inline; `--flag value`
                // needs the next arg consumed for known value flags. Other
                // flags (cargo's `--bench`, `--verbose`, ...) are ignored.
                if VALUE_FLAGS.contains(&flag) && !arg.contains('=') {
                    args.next();
                }
            } else {
                filters.push(arg);
            }
        }
        Criterion {
            sample_size: 20,
            filters,
            smoke,
        }
    }
}

impl Criterion {
    /// Sets how many timing samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// True when `name` passes the CLI filters (all pass when none given).
    /// Selections are counted globally so [`assert_some_benches_ran`] can
    /// fail a filtered run that matched nothing.
    fn selected(&self, name: &str) -> bool {
        let hit = self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f.as_str()));
        if hit {
            BENCHES_RUN.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        hit
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if !self.selected(name) {
            return self;
        }
        if self.smoke {
            smoke_bench(name, None, &mut f);
        } else {
            run_bench(name, self.sample_size, None, &mut f);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        if !self.criterion.selected(&full) {
            return self;
        }
        if self.criterion.smoke {
            smoke_bench(&full, self.throughput, &mut f);
        } else {
            run_bench(&full, self.criterion.sample_size, self.throughput, &mut f);
        }
        self
    }

    /// Finishes the group (reporting is per-bench, so this is a no-op).
    pub fn finish(self) {}
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed_ns: f64,
}

impl Bencher {
    /// Times `routine` over the batch of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos() as f64;
    }

    /// Times `routine` only, re-running `setup` outside the clock each
    /// iteration.
    pub fn iter_with_setup<S, O, P: FnMut() -> S, R: FnMut(S) -> O>(
        &mut self,
        mut setup: P,
        mut routine: R,
    ) {
        let mut total_ns = 0.0;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total_ns += start.elapsed().as_nanos() as f64;
        }
        self.elapsed_ns = total_ns;
    }
}

/// Benchmarks selected (filter-passed) across all groups in this process.
static BENCHES_RUN: AtomicUsize = AtomicUsize::new(0);

/// Whether any benchmark ran in `--test` smoke mode (tags the perf record).
static SMOKE_RAN: AtomicBool = AtomicBool::new(false);

/// One measured benchmark, queued for the `PERF_RECORD_PATH` JSON.
struct PerfEntry {
    id: String,
    ns_per_iter: f64,
    elements_per_iter: u64,
}

/// Measurements accumulated for [`write_perf_record`].
static PERF_RECORD: Mutex<Vec<PerfEntry>> = Mutex::new(Vec::new());

/// The perf-record output path, when recording is enabled.
fn perf_record_path() -> Option<std::path::PathBuf> {
    std::env::var_os("PERF_RECORD_PATH").map(std::path::PathBuf::from)
}

/// Elements processed per iteration for a throughput declaration (1 when
/// undeclared, so `ns_per_element == ns_per_iter`).
fn elements_of(throughput: Option<Throughput>) -> u64 {
    match throughput {
        Some(Throughput::Elements(n)) => n.max(1),
        _ => 1,
    }
}

/// Queues one measurement for the perf record (no-op unless enabled).
///
/// Registering the same bench id again merges by minimum. That is how a
/// bench file time-interleaves a comparison pair: registering `a, b, a, b`
/// measures each id in two well-separated windows and keeps each id's
/// quietest one, so a multi-second load wave on the host cannot land on
/// only one side of a `perf_check` ratio gate.
fn record_measurement(id: &str, ns_per_iter: f64, throughput: Option<Throughput>) {
    if perf_record_path().is_none() {
        return;
    }
    let mut record = PERF_RECORD.lock().expect("perf record lock");
    if let Some(entry) = record.iter_mut().find(|e| e.id == id) {
        entry.ns_per_iter = entry.ns_per_iter.min(ns_per_iter);
        return;
    }
    record.push(PerfEntry {
        id: id.to_string(),
        ns_per_iter,
        elements_per_iter: elements_of(throughput),
    });
}

/// Called by `criterion_main!` after every group has run: a CLI filter that
/// selected zero benchmarks exits nonzero instead of green-lighting a run
/// that measured nothing (e.g. a renamed bench under a CI smoke filter).
pub fn assert_some_benches_ran() {
    if BENCHES_RUN.load(Ordering::Relaxed) == 0 && !Criterion::default().filters.is_empty() {
        eprintln!("error: benchmark filters matched no benchmarks");
        std::process::exit(1);
    }
}

/// Called by `criterion_main!` at exit: when `PERF_RECORD_PATH` is set,
/// writes every queued measurement as a machine-readable JSON record —
/// `{"schema": "...", "mode": "smoke"|"timed", "benches": [{"id", "ns_per_iter",
/// "elements_per_iter", "ns_per_element"}, ...]}` — for the CI perf-record
/// artifact and the committed `BENCH_*.json` trajectory files.
pub fn write_perf_record() {
    let Some(path) = perf_record_path() else {
        return;
    };
    let entries = PERF_RECORD.lock().expect("perf record lock");
    let mode = if SMOKE_RAN.load(Ordering::Relaxed) {
        "smoke"
    } else {
        "timed"
    };
    let mut out = String::from("{\"schema\":\"greennfv-perf-record/v1\",");
    out.push_str(&format!("\"mode\":\"{mode}\",\"benches\":["));
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let id = e.id.replace('\\', "\\\\").replace('"', "\\\"");
        out.push_str(&format!(
            "{{\"id\":\"{id}\",\"ns_per_iter\":{:?},\"elements_per_iter\":{},\"ns_per_element\":{:?}}}",
            e.ns_per_iter,
            e.elements_per_iter,
            e.ns_per_iter / e.elements_per_iter as f64,
        ));
    }
    out.push_str("]}\n");
    if let Err(err) = std::fs::write(&path, out) {
        eprintln!("error: cannot write perf record {}: {err}", path.display());
        std::process::exit(1);
    }
    eprintln!(
        "wrote perf record ({} bench{}) to {}",
        entries.len(),
        if entries.len() == 1 { "" } else { "es" },
        path.display()
    );
}

/// `--test` smoke mode: one untimed iteration, pass/fail only — unless a
/// perf record was requested, in which case a short calibrated measurement
/// (a few ~2 ms samples) produces a usable `ns_per_iter` without the cost
/// of the full timing loop.
fn smoke_bench<F: FnMut(&mut Bencher)>(name: &str, throughput: Option<Throughput>, f: &mut F) {
    SMOKE_RAN.store(true, Ordering::Relaxed);
    if perf_record_path().is_some() {
        let mut cal = Bencher {
            iters: 1,
            elapsed_ns: 0.0,
        };
        f(&mut cal);
        let per_iter_ns = (cal.elapsed_ns.max(1.0)) / cal.iters as f64;
        let iters = ((2.0e6 / per_iter_ns).ceil() as u64).clamp(1, 1_000_000);
        let mut samples = Vec::with_capacity(5);
        for _ in 0..5 {
            let mut b = Bencher {
                iters,
                elapsed_ns: 0.0,
            };
            f(&mut b);
            samples.push(b.elapsed_ns / iters as f64);
        }
        // Record the best sample, not the mean: timing noise is one-sided
        // (scheduler interference only ever adds time), so the minimum is
        // the robust estimator — it keeps the within-record ratio gates
        // (`perf_check --require-ratio` / `--max-ratio`) stable even when
        // a single sample is preempted.
        let best = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        record_measurement(name, best, throughput);
        println!("bench {name:<40} ok (--test, {} recorded)", fmt_ns(best));
        return;
    }
    let mut b = Bencher {
        iters: 1,
        elapsed_ns: 0.0,
    };
    f(&mut b);
    println!("bench {name:<40} ok (--test)");
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    // Calibrate the per-sample iteration count so one sample costs ~5 ms
    // (bounded so slow benches still finish quickly).
    let mut cal = Bencher {
        iters: 1,
        elapsed_ns: 0.0,
    };
    f(&mut cal);
    let per_iter_ns = (cal.elapsed_ns.max(1.0)) / cal.iters as f64;
    let iters = ((5.0e6 / per_iter_ns).ceil() as u64).clamp(1, 1_000_000);

    let mut means = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed_ns: 0.0,
        };
        f(&mut b);
        means.push(b.elapsed_ns / iters as f64);
    }
    let mean = means.iter().sum::<f64>() / means.len() as f64;
    let min = means.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = means.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    // Timed runs record the *mean*: committed baselines are timed, and CI's
    // smoke pass records best-of-5, so a mean baseline keeps the smoke
    // comparison one-sided in the safe direction (a timed min-of-20 would
    // sit below anything a 5-sample smoke run can reach and flag phantom
    // regressions). Duplicate registrations still min-merge, so interleaved
    // rounds keep their noise robustness.
    record_measurement(name, mean, throughput);

    let thr = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.0} elem/s", n as f64 * 1.0e9 / mean)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.0} B/s", n as f64 * 1.0e9 / mean)
        }
        None => String::new(),
    };
    println!(
        "bench {name:<40} {:>12} [{} .. {}]{thr}",
        fmt_ns(mean),
        fmt_ns(min),
        fmt_ns(max)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1.0e3 {
        format!("{ns:.1} ns")
    } else if ns < 1.0e6 {
        format!("{:.2} µs", ns / 1.0e3)
    } else if ns < 1.0e9 {
        format!("{:.2} ms", ns / 1.0e6)
    } else {
        format!("{:.2} s", ns / 1.0e9)
    }
}

/// Declares a group of benchmark functions, mirroring criterion's two
/// accepted syntaxes.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::assert_some_benches_ran();
            $crate::write_perf_record();
        }
    };
}

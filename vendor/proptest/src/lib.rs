//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro, range/tuple/`any` strategies, sized
//! [`collection::vec`] strategies, and `prop_assert!`/`prop_assert_eq!`.
//! Each test runs [`CASES`] deterministic random cases (seeded from the
//! test name, so failures reproduce). Unlike real proptest there is no
//! shrinking: a failing case reports its inputs via `Debug` instead.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Number of random cases each property runs (matches proptest's default).
pub const CASES: u32 = 256;

/// Deterministic case generator handed to strategies.
#[derive(Debug, Clone)]
pub struct Prng(StdRng);

impl Prng {
    /// Seeds a generator from a stable hash of the test name.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Prng(StdRng::seed_from_u64(h))
    }
}

/// Error carried out of a failing property body.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut Prng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Prng) -> $t {
                rng.0.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Prng) -> $t {
                rng.0.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut Prng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut Prng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut Prng) -> Self {
        rng.0.random()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut Prng) -> Self {
        rng.0.random()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut Prng) -> Self {
        rng.0.random()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut Prng) -> Self {
        rng.0.random()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut Prng) -> Self {
        rng.0.random()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut Prng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Prng, Strategy};
    use rand::RngExt;

    /// Length specifications accepted by [`vec`]: a fixed `usize` or a
    /// `Range<usize>`.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut Prng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut Prng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut Prng) -> usize {
            rng.0.random_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut Prng) -> usize {
            rng.0.random_range(self.clone())
        }
    }

    /// Strategy generating `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut Prng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length comes from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }
}

/// Everything the `proptest!` body needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Strategy, TestCaseError};
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`CASES`](crate::CASES) random cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::Prng::from_name(stringify!($name));
                for case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let inputs = format!(concat!($(stringify!($arg), " = {:?}  "),+), $(&$arg),+);
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("property failed at case {case}/{}:\n  {e}\n  inputs: {inputs}", $crate::CASES);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (with its inputs reported) instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {} ({})", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n  right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{} == {}` ({})\n  left: {:?}\n  right: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)+), l, r
            )));
        }
    }};
}

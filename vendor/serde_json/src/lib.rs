//! Offline stand-in for `serde_json`: renders and parses the vendored serde
//! shim's `Value` tree as real JSON text.
//!
//! Floats are written with Rust's shortest round-trippable representation
//! (`{:?}`), so `to_string` → `from_str` is lossless for every finite `f64`.
//! Non-finite floats (which plain JSON cannot spell) are encoded as the
//! tagged object `{"__nonfinite__": "nan" | "inf" | "-inf"}` and decoded
//! back transparently, so ordinary strings like `"inf"` round-trip
//! unchanged.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Object key marking an encoded non-finite float. Chosen to be
/// implausible as a real field name; a genuine single-entry map with this
/// key and a matching string value would be mis-decoded, which no type in
/// this workspace produces.
const NONFINITE_TAG: &str = "__nonfinite__";

/// Error type shared by serialization and deserialization.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes any shim-`Serialize` value to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Parses a JSON string into any shim-`Deserialize` value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------- writer

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_nan() {
                out.push_str(&format!("{{\"{NONFINITE_TAG}\":\"nan\"}}"));
            } else if x.is_infinite() {
                let spelling = if *x > 0.0 { "inf" } else { "-inf" };
                out.push_str(&format!("{{\"{NONFINITE_TAG}\":\"{spelling}\"}}"));
            } else {
                out.push_str(&format!("{x:?}"));
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found {:?}",
                byte as char,
                self.pos,
                self.peek().map(|b| b as char)
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    /// Reads 4 hex digits starting at byte offset `at`.
    fn parse_hex4(&self, at: usize) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(at..at + 4)
            .ok_or_else(|| Error("truncated \\u escape".into()))?;
        u32::from_str_radix(
            std::str::from_utf8(hex).map_err(|_| Error("bad \\u escape".into()))?,
            16,
        )
        .map_err(|_| Error("bad \\u escape".into()))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let code = self.parse_hex4(self.pos + 1)?;
                            self.pos += 4;
                            let code = if (0xD800..=0xDBFF).contains(&code) {
                                // High surrogate: a `\uXXXX` low surrogate
                                // must follow (JSON's UTF-16 escape pairs).
                                if self.bytes.get(self.pos + 1..self.pos + 3) != Some(b"\\u") {
                                    return Err(Error("unpaired high surrogate".into()));
                                }
                                let low = self.parse_hex4(self.pos + 3)?;
                                self.pos += 6;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(Error("invalid low surrogate".into()));
                                }
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("bad escape {:?}", other.map(|b| b as char))))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]`, found {:?}",
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(finish_object(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}`, found {:?}",
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }
}

/// Collapses the non-finite float encoding back to a `Float`; every other
/// object stays a `Map`.
fn finish_object(entries: Vec<(String, Value)>) -> Value {
    if let [(key, Value::Str(spelling))] = entries.as_slice() {
        if key == NONFINITE_TAG {
            match spelling.as_str() {
                "nan" => return Value::Float(f64::NAN),
                "inf" => return Value::Float(f64::INFINITY),
                "-inf" => return Value::Float(f64::NEG_INFINITY),
                _ => {}
            }
        }
    }
    Value::Map(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        for json in [
            "null",
            "true",
            "false",
            "0",
            "-17",
            "3.5",
            "1e-3",
            "\"hi\\n\"",
        ] {
            let v: Value = {
                let mut p = Parser {
                    bytes: json.as_bytes(),
                    pos: 0,
                };
                p.parse_value().unwrap()
            };
            let mut out = String::new();
            write_value(&v, &mut out);
            let v2 = {
                let mut p = Parser {
                    bytes: out.as_bytes(),
                    pos: 0,
                };
                p.parse_value().unwrap()
            };
            assert_eq!(v, v2);
        }
    }

    #[test]
    fn float_round_trip_is_exact() {
        for x in [0.1, 1.0 / 3.0, f64::MAX, f64::MIN_POSITIVE, -0.0, 2.5e-300] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{s}");
        }
    }

    #[test]
    fn nonfinite_floats_and_colliding_strings_round_trip() {
        let s = to_string(&f64::NAN).unwrap();
        assert!(from_str::<f64>(&s).unwrap().is_nan());
        for x in [f64::INFINITY, f64::NEG_INFINITY] {
            let s = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), x);
        }
        // Strings spelled like the old sentinels stay strings.
        for text in ["inf", "-inf", "NaN", "nan"] {
            let s = to_string(&text.to_string()).unwrap();
            assert_eq!(from_str::<String>(&s).unwrap(), text);
        }
        // A vec mixing them survives as-is.
        let v = vec![f64::INFINITY, 1.5, f64::NEG_INFINITY];
        let back: Vec<f64> = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn integer_edges() {
        // Full u64 range survives (Value::Int is i128-wide).
        let s = to_string(&u64::MAX).unwrap();
        assert_eq!(s, u64::MAX.to_string());
        assert_eq!(from_str::<u64>(&s).unwrap(), u64::MAX);
        assert_eq!(
            from_str::<i64>(&to_string(&i64::MIN).unwrap()).unwrap(),
            i64::MIN
        );
        // Huge integral floats are rejected for integer targets, not
        // silently saturated.
        assert!(from_str::<i64>("1e300").is_err());
        // Exact integral floats within 2^53 still coerce.
        assert_eq!(from_str::<u32>("12.0").unwrap(), 12);
    }

    #[test]
    fn utf16_surrogate_pairs_decode() {
        let emoji: String = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(emoji, "\u{1F600}");
        assert!(
            from_str::<String>("\"\\ud83d\"").is_err(),
            "unpaired high surrogate"
        );
        assert!(
            from_str::<String>("\"\\ud83d\\u0041\"").is_err(),
            "bad low surrogate"
        );
    }

    #[test]
    fn nested_round_trip() {
        let v = Value::Map(vec![
            (
                "a".into(),
                Value::Seq(vec![Value::Int(1), Value::Float(2.5)]),
            ),
            ("b".into(), Value::Str("x \"y\" z".into())),
            ("c".into(), Value::Null),
        ]);
        let mut out = String::new();
        write_value(&v, &mut out);
        let mut p = Parser {
            bytes: out.as_bytes(),
            pos: 0,
        };
        assert_eq!(p.parse_value().unwrap(), v);
    }
}

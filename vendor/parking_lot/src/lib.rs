//! Offline stand-in for `parking_lot`: thin wrappers over `std::sync`
//! primitives with parking_lot's non-poisoning API (`lock()`, `read()`,
//! `write()` return guards directly). A thread that panics while holding a
//! lock poisons the std primitive; we recover the guard anyway, matching
//! parking_lot's semantics of never poisoning.

use std::sync;

/// Mutual exclusion lock whose `lock` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking the current thread until available.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Reader-writer lock whose `read`/`write` never return a `Result`.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps `value` in a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquires shared read access.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

//! `#[derive(Serialize, Deserialize)]` for the vendored serde shim.
//!
//! Hand-rolled over `proc_macro` token trees because `syn`/`quote` are not
//! available offline. Supports the shapes this workspace actually derives:
//! non-generic named structs (with `#[serde(skip)]` and `#[serde(default)]`
//! fields), tuple structs, unit structs, and enums whose variants are unit,
//! tuple, or struct-like (with `#[serde(rename_all = "lowercase")]` on the
//! container). Representation matches the shim's `Value` tree: newtype
//! structs are transparent, unit variants are strings, payload variants are
//! single-entry maps (serde's external tagging). Unrecognized serde
//! attributes panic at expansion time rather than being silently ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The serde attributes the shim understands, accumulated over all
/// `#[serde(...)]` attributes on one item/field/variant.
#[derive(Debug, Default, Clone)]
struct SerdeAttrs {
    skip: bool,
    default: bool,
    rename_all: Option<String>,
}

#[derive(Debug)]
struct Field {
    name: String,
    skip: bool,
    default: bool,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    /// Wire name after the container's `rename_all` rule (equals `name`
    /// when no rule is set).
    ser_name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Shape {
    Named {
        name: String,
        fields: Vec<Field>,
    },
    Tuple {
        name: String,
        arity: usize,
    },
    Unit {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives the shim's `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    gen_serialize(&shape)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the shim's `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    gen_deserialize(&shape)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

/// Consumes leading attributes, accumulating the serde ones it recognizes.
fn eat_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, SerdeAttrs) {
    let mut attrs = SerdeAttrs::default();
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    if g.delimiter() == Delimiter::Bracket {
                        collect_serde_attr(&g.stream(), &mut attrs);
                        i += 2;
                        continue;
                    }
                }
                break;
            }
            _ => break,
        }
    }
    (i, attrs)
}

/// Parses the inside of one `#[...]` attribute. Non-serde attributes are
/// ignored; serde entries the shim does not implement panic so a typo or an
/// unsupported option fails the build instead of changing the format.
fn collect_serde_attr(stream: &TokenStream, attrs: &mut SerdeAttrs) {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    let Some(TokenTree::Group(g)) = tokens.get(1) else {
        return;
    };
    let entries: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut j = 0;
    while j < entries.len() {
        let key = match &entries[j] {
            TokenTree::Ident(id) => id.to_string(),
            TokenTree::Punct(p) if p.as_char() == ',' => {
                j += 1;
                continue;
            }
            other => panic!("serde_derive shim: unexpected token in #[serde(...)]: {other:?}"),
        };
        j += 1;
        let value = match entries.get(j) {
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                j += 1;
                match entries.get(j) {
                    Some(TokenTree::Literal(lit)) => {
                        j += 1;
                        Some(lit.to_string().trim_matches('"').to_string())
                    }
                    other => panic!(
                        "serde_derive shim: expected literal after `{key} =`, found {other:?}"
                    ),
                }
            }
            _ => None,
        };
        match (key.as_str(), value) {
            ("skip", None) => attrs.skip = true,
            ("default", None) => attrs.default = true,
            ("rename_all", Some(rule)) => {
                if rule != "lowercase" {
                    panic!("serde_derive shim: unsupported rename_all rule `{rule}`");
                }
                attrs.rename_all = Some(rule);
            }
            (key, value) => {
                panic!("serde_derive shim: unsupported serde attribute `{key}` (value {value:?})")
            }
        }
    }
}

/// Applies a container `rename_all` rule to one variant name.
fn apply_rename(rule: Option<&str>, name: &str) -> String {
    match rule {
        Some("lowercase") => name.to_ascii_lowercase(),
        Some(other) => panic!("serde_derive shim: unsupported rename_all rule `{other}`"),
        None => name.to_string(),
    }
}

/// Consumes a `pub` / `pub(...)` visibility qualifier if present.
fn eat_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_item(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (mut i, container) = eat_attrs(&tokens, 0);
    i = eat_vis(&tokens, i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, found {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic type `{name}` is not supported");
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Named {
                name,
                fields: parse_named_fields(&g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Shape::Tuple {
                name,
                arity: count_top_level_fields(&g.stream()),
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit { name },
            other => panic!("serde_derive shim: malformed struct body: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                name,
                variants: parse_variants(&g.stream(), container.rename_all.as_deref()),
            },
            other => panic!("serde_derive shim: malformed enum body: {other:?}"),
        },
        other => panic!("serde_derive shim: cannot derive for `{other}`"),
    }
}

fn parse_named_fields(stream: &TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (next, attrs) = eat_attrs(&tokens, i);
        i = eat_vis(&tokens, next);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive shim: expected field name, found {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                panic!("serde_derive shim: expected `:` after field `{name}`, found {other:?}")
            }
        }
        i = skip_type(&tokens, i);
        fields.push(Field {
            name,
            skip: attrs.skip,
            default: attrs.default,
        });
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

/// Advances past one type expression, stopping at a top-level `,`.
/// Tracks `<`/`>` nesting so commas inside generics don't terminate early.
fn skip_type(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle_depth = 0i32;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
            _ => {}
        }
        i += 1;
    }
    i
}

fn count_top_level_fields(stream: &TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        let (next, _) = eat_attrs(&tokens, i);
        i = eat_vis(&tokens, next);
        if i >= tokens.len() {
            break;
        }
        i = skip_type(&tokens, i);
        count += 1;
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    count
}

fn parse_variants(stream: &TokenStream, rename_all: Option<&str>) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (next, _) = eat_attrs(&tokens, i);
        i = next;
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive shim: expected variant name, found {other:?}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_top_level_fields(&g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(&g.stream()))
            }
            _ => VariantKind::Unit,
        };
        let ser_name = apply_rename(rename_all, &name);
        variants.push(Variant {
            name,
            ser_name,
            kind,
        });
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::Named { name, fields } => {
            let mut body = String::from("let mut m: Vec<(String, ::serde::Value)> = Vec::new();\n");
            for f in fields.iter().filter(|f| !f.skip) {
                body.push_str(&format!(
                    "m.push((String::from(\"{0}\"), ::serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            body.push_str("::serde::Value::Map(m)");
            impl_serialize(name, &body)
        }
        Shape::Tuple { name, arity: 1 } => {
            impl_serialize(name, "::serde::Serialize::to_value(&self.0)")
        }
        Shape::Tuple { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            impl_serialize(
                name,
                &format!("::serde::Value::Seq(vec![{}])", items.join(", ")),
            )
        }
        Shape::Unit { name } => impl_serialize(name, "::serde::Value::Null"),
        Shape::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "Self::{0} => ::serde::Value::Str(String::from(\"{1}\")),\n",
                        v.name, v.ser_name
                    )),
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                        let payload = if *arity == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "Self::{0}({1}) => ::serde::Value::Map(vec![(String::from(\"{2}\"), {3})]),\n",
                            v.name,
                            binds.join(", "),
                            v.ser_name,
                            payload
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(String::from(\"{0}\"), ::serde::Serialize::to_value({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "Self::{0} {{ {1} }} => ::serde::Value::Map(vec![(String::from(\"{2}\"), ::serde::Value::Map(vec![{3}]))]),\n",
                            v.name,
                            binds.join(", "),
                            v.ser_name,
                            items.join(", ")
                        ));
                    }
                }
            }
            impl_serialize(name, &format!("match self {{\n{arms}}}"))
        }
    }
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::Named { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&field_init(f));
                inits.push_str(",\n");
            }
            let bind = if fields.iter().any(|f| !f.skip) {
                "m"
            } else {
                "_"
            };
            impl_deserialize(
                name,
                &format!(
                    "let {bind} = v.as_map()?;\n::std::result::Result::Ok(Self {{\n{inits}}})"
                ),
            )
        }
        Shape::Tuple { name, arity: 1 } => impl_deserialize(
            name,
            "::std::result::Result::Ok(Self(::serde::Deserialize::from_value(v)?))",
        ),
        Shape::Tuple { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(s.get({i}).ok_or_else(|| ::serde::DeError(String::from(\"tuple struct too short\")))?)?"))
                .collect();
            impl_deserialize(
                name,
                &format!(
                    "let s = v.as_seq()?;\n::std::result::Result::Ok(Self({}))",
                    items.join(", ")
                ),
            )
        }
        Shape::Unit { name } => impl_deserialize(name, "::std::result::Result::Ok(Self)"),
        Shape::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{1}\" => ::std::result::Result::Ok(Self::{0}),\n",
                        v.name, v.ser_name
                    )),
                    VariantKind::Tuple(arity) => {
                        let body = if *arity == 1 {
                            format!(
                                "::std::result::Result::Ok(Self::{0}(::serde::Deserialize::from_value(payload)?))",
                                v.name
                            )
                        } else {
                            let items: Vec<String> = (0..*arity)
                                .map(|i| format!("::serde::Deserialize::from_value(s.get({i}).ok_or_else(|| ::serde::DeError(String::from(\"variant payload too short\")))?)?"))
                                .collect();
                            format!(
                                "{{ let s = payload.as_seq()?; ::std::result::Result::Ok(Self::{0}({1})) }}",
                                v.name,
                                items.join(", ")
                            )
                        };
                        payload_arms.push_str(&format!("\"{0}\" => {body},\n", v.ser_name));
                    }
                    VariantKind::Struct(fields) => {
                        let inits: Vec<String> = fields.iter().map(field_init).collect();
                        payload_arms.push_str(&format!(
                            "\"{2}\" => {{ let m = payload.as_map()?; ::std::result::Result::Ok(Self::{0} {{ {1} }}) }},\n",
                            v.name,
                            inits.join(", "),
                            v.ser_name
                        ));
                    }
                }
            }
            let body = format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n{unit_arms}\
                 other => ::std::result::Result::Err(::serde::DeError(format!(\"unknown variant `{{other}}` for {name}\"))),\n}},\n\
                 ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                 let (tag, payload) = &entries[0];\n\
                 match tag.as_str() {{\n{payload_arms}\
                 other => ::std::result::Result::Err(::serde::DeError(format!(\"unknown variant `{{other}}` for {name}\"))),\n}}\n}},\n\
                 other => ::std::result::Result::Err(::serde::DeError(format!(\"bad enum encoding for {name}: {{other:?}}\"))),\n}}"
            );
            impl_deserialize(name, &body)
        }
    }
}

/// One `name: <expr>` initializer for a named field being deserialized:
/// `skip` fields take their `Default`, `default` fields fall back to it
/// when the key is absent, everything else is required.
fn field_init(f: &Field) -> String {
    if f.skip {
        format!("{}: ::std::default::Default::default()", f.name)
    } else if f.default {
        format!(
            "{0}: match ::serde::opt_field(m, \"{0}\")? {{ \
             ::std::option::Option::Some(x) => x, \
             ::std::option::Option::None => ::std::default::Default::default() }}",
            f.name
        )
    } else {
        format!("{0}: ::serde::field(m, \"{0}\")?", f.name)
    }
}

fn impl_deserialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         #[allow(unused_variables)] let v = v;\n{body}\n}}\n}}\n"
    )
}

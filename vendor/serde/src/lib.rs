//! Offline stand-in for the `serde` crate.
//!
//! The build container has no network access to crates.io, so this crate
//! provides the small serialization surface the workspace actually uses:
//! a JSON-shaped [`Value`] tree, [`Serialize`]/[`Deserialize`] traits over
//! it, and `#[derive(Serialize, Deserialize)]` via the sibling
//! `serde_derive` shim. `serde_json` (also vendored) renders/parses the
//! tree. The API is intentionally tiny; swap back to real serde by
//! deleting `vendor/` entries from the workspace manifests.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A JSON-shaped data tree: the interchange format between [`Serialize`],
/// [`Deserialize`] and the vendored `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integer number (serialized without a decimal point). Wide enough
    /// to hold every i64 and u64 exactly.
    Int(i128),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, preserving insertion order.
    Map(Vec<(String, Value)>),
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

impl Value {
    /// Interprets the value as a float (accepting integers).
    pub fn as_f64(&self) -> Result<f64, DeError> {
        match self {
            Value::Float(x) => Ok(*x),
            Value::Int(n) => Ok(*n as f64),
            other => Err(DeError(format!("expected number, found {other:?}"))),
        }
    }

    /// Interprets the value as an integer. Integral floats are accepted
    /// only within ±2⁵³, where f64 represents every integer exactly.
    pub fn as_int(&self) -> Result<i128, DeError> {
        match self {
            Value::Int(n) => Ok(*n),
            Value::Float(x) if x.fract() == 0.0 && x.abs() <= 9.007_199_254_740_992e15 => {
                Ok(*x as i128)
            }
            other => Err(DeError(format!("expected integer, found {other:?}"))),
        }
    }

    /// Interprets the value as a boolean.
    pub fn as_bool(&self) -> Result<bool, DeError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, found {other:?}"))),
        }
    }

    /// Interprets the value as a string slice.
    pub fn as_str(&self) -> Result<&str, DeError> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(DeError(format!("expected string, found {other:?}"))),
        }
    }

    /// Interprets the value as an array.
    pub fn as_seq(&self) -> Result<&[Value], DeError> {
        match self {
            Value::Seq(items) => Ok(items),
            other => Err(DeError(format!("expected array, found {other:?}"))),
        }
    }

    /// Interprets the value as an object.
    pub fn as_map(&self) -> Result<&[(String, Value)], DeError> {
        match self {
            Value::Map(entries) => Ok(entries),
            other => Err(DeError(format!("expected object, found {other:?}"))),
        }
    }
}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the interchange tree.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `self` out of the interchange tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Mirror of real serde's `serde::de` module for the one name downstream
/// bounds use: in real serde, owned deserialization is spelled
/// `de::DeserializeOwned`; here every [`Deserialize`] is already owned, so
/// the alias keeps generic bounds source-compatible with a future swap to
/// the crates.io dependency.
pub mod de {
    pub use crate::Deserialize as DeserializeOwned;
}

/// Looks up `name` in a deserialized object and decodes it — the helper the
/// derive macro expands struct fields into.
pub fn field<T: Deserialize>(map: &[(String, Value)], name: &str) -> Result<T, DeError> {
    match map.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v),
        None => Err(DeError(format!("missing field `{name}`"))),
    }
}

/// Like [`field`], but an absent key is `Ok(None)` instead of an error —
/// the helper `#[serde(default)]` fields expand into, so documents written
/// before a field existed still deserialize.
pub fn opt_field<T: Deserialize>(
    map: &[(String, Value)],
    name: &str,
) -> Result<Option<T>, DeError> {
    match map.iter().find(|(k, _)| k == name) {
        Some((_, v)) => Ok(Some(T::from_value(v)?)),
        None => Ok(None),
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i128) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_int()?;
                <$t>::try_from(n).map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> { Ok(v.as_f64()? as $t) }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool()
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.as_str()?.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (*self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        self.as_ref().to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Box::new(T::from_value(v)?))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let s = v.as_seq()?;
                let mut it = s.iter();
                Ok(($(
                    $name::from_value(it.next().ok_or_else(|| DeError("tuple too short".into()))?)?,
                )+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_seq()?;
        if s.len() != N {
            return Err(DeError(format!(
                "expected array of length {N}, found {}",
                s.len()
            )));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(s) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

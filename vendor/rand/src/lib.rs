//! Offline stand-in for the `rand` crate.
//!
//! Provides exactly the surface this workspace uses: [`rngs::StdRng`]
//! (xoshiro256++, seeded through SplitMix64), [`SeedableRng::seed_from_u64`],
//! and the [`RngExt`] extension trait with `random()` / `random_range()` /
//! `random_bool()`. Deterministic for a given seed, which is what the
//! simulator and tests rely on; statistical quality is ample for Monte
//! Carlo workloads (xoshiro256++ passes BigCrush).

/// Concrete generators.
pub mod rngs {
    /// The workspace's standard PRNG: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        /// Snapshot of the generator's 256-bit internal state.
        ///
        /// **Divergence from crates.io `rand`:** the real `StdRng` hides its
        /// state. This shim exposes it so the workspace can checkpoint and
        /// bit-exactly resume long simulations (see
        /// `docs/ARCHITECTURE.md`, vendor divergences). When swapping back
        /// to crates.io, route checkpointing through a serializable RNG
        /// (e.g. `rand_xoshiro` with serde) instead.
        #[inline]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a [`StdRng::state`] snapshot, resuming
        /// the stream at exactly the captured point.
        ///
        /// The all-zero state is the xoshiro fixed point (the stream would
        /// be constant zero); it cannot be produced by `seed_from_u64` and
        /// is re-seeded defensively here.
        #[inline]
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                use crate::SeedableRng;
                return Self::seed_from_u64(0);
            }
            Self { s }
        }

        /// Advances the state and returns the next 64 random bits.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

use rngs::StdRng;

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion of the 64-bit seed into the 256-bit state,
        // as recommended by the xoshiro authors.
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

/// Types producible uniformly at random from a generator.
pub trait Random: Sized {
    /// Draws one uniformly distributed value.
    fn random_from(rng: &mut StdRng) -> Self;
}

impl Random for f64 {
    #[inline]
    fn random_from(rng: &mut StdRng) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    #[inline]
    fn random_from(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Random for bool {
    #[inline]
    fn random_from(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for u64 {
    #[inline]
    fn random_from(rng: &mut StdRng) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    #[inline]
    fn random_from(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for usize {
    #[inline]
    fn random_from(rng: &mut StdRng) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded draw (Lemire); bias < 2^-64 is
                // irrelevant at simulation scales.
                let hi = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (self.start as i128 + hi as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let hi = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (start as i128 + hi as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let u = <$t as Random>::random_from(rng);
                let x = self.start + u * (self.end - self.start);
                // `start + u*(end-start)` can round up to `end` on tight
                // spans; keep the half-open contract.
                if x >= self.end { self.end.next_down() } else { x }
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let u = <$t as Random>::random_from(rng);
                start + u * (end - start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Extension methods every generator exposes (mirrors rand 0.9's `Rng`).
pub trait RngExt {
    /// Draws a uniform value of type `T`.
    fn random<T: Random>(&mut self) -> T;
    /// Draws uniformly from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
    /// Returns `true` with probability `p` (clamped to [0, 1]).
    fn random_bool(&mut self, p: f64) -> bool;
}

impl RngExt for StdRng {
    #[inline]
    fn random<T: Random>(&mut self) -> T {
        T::random_from(self)
    }

    #[inline]
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn state_roundtrip_resumes_stream_exactly() {
        let mut a = StdRng::seed_from_u64(99);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // The degenerate all-zero state is rejected, not honoured.
        let mut z = StdRng::from_state([0; 4]);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x: f64 = rng.random_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&x));
            let n: usize = rng.random_range(0..13);
            assert!(n < 13);
            let m: i64 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&m));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn tight_float_ranges_honour_exclusive_end() {
        let mut rng = StdRng::seed_from_u64(3);
        let (start, end) = (1.0f64, 1.0f64.next_up());
        for _ in 0..1_000 {
            let x: f64 = rng.random_range(start..end);
            assert!(x >= start && x < end, "{x} escaped one-ulp span");
        }
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
